// BlockOn — cooperative blocking on a future (the paper's save/restore escape hatch applied
// to futures).
//
// Ported software often wants a blocking call ("read this file, give me the bytes"). Inside an
// event handler we cannot block the core, so BlockOn freezes the current event with
// SaveContext and resumes it when the future fulfills — other events keep flowing meanwhile.
//
// The subtle race: the future may fulfill on another core between installing the continuation
// and freezing the context. The continuation therefore never activates directly; it spawns an
// activation event onto the origin core. Events on a core never preempt the running event, so
// the activation can only dispatch after SaveContext has parked the frame — by which time the
// context is valid.
#ifndef EBBRT_SRC_EVENT_BLOCK_ON_H_
#define EBBRT_SRC_EVENT_BLOCK_ON_H_

#include <atomic>
#include <memory>
#include <optional>

#include "src/event/event_manager.h"
#include "src/future/future.h"

namespace ebbrt {
namespace event {

template <typename T>
T BlockOn(Future<T> future) {
  if (future.Ready()) {
    return future.Get();
  }
  EventManager& em = Local();
  std::size_t origin = CurrentContext().machine_core;

  struct State {
    std::atomic<bool> completed{false};
    bool blocked = false;  // only touched by the origin core
    EventContext ctx;
    std::optional<Future<T>> done;
  };
  auto st = std::make_shared<State>();

  future.Then([st, &em, origin](Future<T> f) {
    st->done.emplace(std::move(f));
    st->completed.store(true, std::memory_order_release);
    em.SpawnRemote(
        [st, &em] {
          if (st->blocked) {
            em.ActivateContext(std::move(st->ctx));
          }
        },
        origin);
  });

  if (!st->completed.load(std::memory_order_acquire)) {
    st->blocked = true;
    em.SaveContext(st->ctx);
  }
  Kassert(st->completed.load(std::memory_order_acquire), "BlockOn: resumed unfulfilled");
  return st->done->Get();
}

}  // namespace event
}  // namespace ebbrt

#endif  // EBBRT_SRC_EVENT_BLOCK_ON_H_
