#include "src/event/thread_machine.h"

#include <chrono>

namespace ebbrt {

ThreadMachine::ThreadMachine(std::size_t num_cores, RuntimeKind kind, std::string name)
    : runtime_(std::make_unique<Runtime>(kind, std::move(name))), epoch_ns_(WallNowNs()) {
  runtime_->AddCores(num_cores);
  em_root_ = new EventManagerRoot(*this, num_cores);
  runtime_->InstallRoot(kEventManagerId, em_root_);
  runtime_->SetSubsystem(Subsystem::kEventManager, em_root_);
  timer_root_ = new TimerRoot(*this, *em_root_, num_cores);
  runtime_->InstallRoot(kTimerId, timer_root_);
  runtime_->SetSubsystem(Subsystem::kTimer, timer_root_);
  for (std::size_t i = 0; i < num_cores; ++i) {
    cores_.push_back(std::make_unique<CoreState>());
  }
}

ThreadMachine::~ThreadMachine() {
  Shutdown();
  delete timer_root_;
  delete em_root_;
}

void ThreadMachine::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->thread = std::thread([this, i] { CoreMain(i); });
  }
}

void ThreadMachine::Shutdown() {
  if (!started_ || stopped_.load()) {
    if (started_) {
      for (auto& core : cores_) {
        if (core->thread.joinable()) {
          core->thread.join();
        }
      }
    }
    return;
  }
  stopped_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    WakeCore(i);
  }
  for (auto& core : cores_) {
    if (core->thread.joinable()) {
      core->thread.join();
    }
  }
}

void ThreadMachine::CoreMain(std::size_t machine_core) {
  ScopedContext ctx(*runtime_, runtime_->global_core(machine_core), machine_core,
                    runtime_->hosted());
  em_root_->RepFor(machine_core).Loop();
}

void ThreadMachine::Spawn(std::size_t core, MoveFunction<void()> fn) {
  em_root_->RepFor(core).Spawn(std::move(fn));
}

void ThreadMachine::RunSync(std::size_t core, MoveFunction<void()> fn) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Spawn(core, [&] {
    fn();
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
}

void ThreadMachine::WakeCore(std::size_t machine_core) {
  CoreState& core = *cores_[machine_core];
  {
    std::lock_guard<std::mutex> lock(core.mu);
    core.wake_pending = true;
  }
  core.cv.notify_one();
}

void ThreadMachine::Halt(std::size_t machine_core, std::uint64_t wake_at) {
  CoreState& core = *cores_[machine_core];
  std::unique_lock<std::mutex> lock(core.mu);
  if (core.wake_pending || stopped_.load(std::memory_order_acquire)) {
    core.wake_pending = false;
    return;
  }
  if (wake_at == kNoWakeup) {
    core.cv.wait(lock, [&] {
      return core.wake_pending || stopped_.load(std::memory_order_acquire);
    });
  } else {
    std::uint64_t now = Now();
    auto delay = std::chrono::nanoseconds(wake_at > now ? wake_at - now : 0);
    core.cv.wait_for(lock, delay, [&] {
      return core.wake_pending || stopped_.load(std::memory_order_acquire);
    });
  }
  core.wake_pending = false;
}

}  // namespace ebbrt
