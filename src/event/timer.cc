#include "src/event/timer.h"

namespace ebbrt {

TimerRoot::TimerRoot(Executor& executor, EventManagerRoot& em_root, std::size_t num_cores)
    : executor_(executor), em_root_(em_root) {
  reps_.resize(num_cores);
}

Timer& TimerRoot::RepFor(std::size_t machine_core) {
  Kassert(machine_core < reps_.size(), "TimerRoot: bad core");
  std::lock_guard<Spinlock> lock(mu_);
  if (reps_[machine_core] == nullptr) {
    reps_[machine_core] = std::make_unique<Timer>(*this, machine_core);
  }
  return *reps_[machine_core];
}

Timer& Timer::HandleFault(EbbId id) {
  Context& ctx = CurrentContext();
  auto* root = static_cast<TimerRoot*>(ctx.runtime->FindRoot(id));
  Kbugon(root == nullptr, "Timer: no root installed for machine '%s'",
         ctx.runtime->name().c_str());
  Timer& rep = root->RepFor(ctx.machine_core);
  Runtime::CacheRep(id, &rep);
  return rep;
}

Timer::Timer(TimerRoot& root, std::size_t machine_core)
    : root_(root), machine_core_(machine_core) {
  // Hook this rep into its core's event loop. The loop polls due timers each pass and uses
  // the returned deadline to bound its halt.
  root_.em_root().RepFor(machine_core_).SetTimerPoll(
      [this](std::uint64_t now) { return Poll(now); });
}

std::uint64_t Timer::Start(std::uint64_t delay_ns, MoveFunction<void()> fn, bool periodic) {
  Kassert(CurrentContext().machine_core == machine_core_, "Timer::Start: wrong core");
  std::uint64_t handle = next_handle_++;
  std::uint64_t now = root_.executor().Now();
  Entry entry;
  entry.fn = std::move(fn);
  entry.period_ns = periodic ? delay_ns : 0;
  entry.cancelled = false;
  entries_.emplace(handle, std::move(entry));
  queue_.push({now + delay_ns, handle});
  // Tighten the loop's halt deadline in case no further dispatch pass polls before halting.
  root_.em_root().RepFor(machine_core_).SetTimerDeadline(queue_.top().deadline);
  return handle;
}

void Timer::Stop(std::uint64_t handle) {
  auto it = entries_.find(handle);
  if (it != entries_.end()) {
    // Lazy cancellation: the queue entry dies when it pops.
    it->second.cancelled = true;
  }
}

EventManager::TimerPollResult Timer::Poll(std::uint64_t now) {
  EventManager::TimerPollResult result;
  while (!queue_.empty() && queue_.top().deadline <= now) {
    QueueItem item = queue_.top();
    queue_.pop();
    auto it = entries_.find(item.handle);
    if (it == entries_.end() || it->second.cancelled) {
      entries_.erase(item.handle);
      continue;
    }
    ++result.dispatched;
    EventManager& em = root_.em_root().RepFor(machine_core_);
    if (it->second.period_ns != 0) {
      // Re-arm before running so the callback can Stop() its own handle. Periodic callbacks
      // are persistent: invoked in place, never moved out.
      queue_.push({item.deadline + it->second.period_ns, item.handle});
      em.RunTimerHandler(&it->second.fn, /*persistent=*/true);
    } else {
      // One-shot: move the callback out so the entry can be reclaimed even if the callback
      // starts new timers (iterator invalidation). The event stack takes ownership.
      MoveFunction<void()> fn = std::move(it->second.fn);
      entries_.erase(it);
      em.RunTimerHandler(&fn, /*persistent=*/false);
    }
  }
  result.next_deadline = queue_.empty() ? kNoWakeup : queue_.top().deadline;
  return result;
}

}  // namespace ebbrt
