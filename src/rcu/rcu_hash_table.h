// RcuHashTable — lock-free readers, per-bucket-locked writers, RCU-deferred reclamation.
//
// The EbbRT network stack "stores connection state in an RCU hash table which allows common
// connection lookup operations to proceed without any atomic operations" (§3.6); memcached's
// key/value store uses the same structure to avoid the lock contention that limits stock
// memcached's scalability (§4.2).
//
// Readers traverse bucket chains through release/consume-ordered next pointers — plain loads
// on x86 — and never synchronize. Writers serialize per bucket; erased nodes are reclaimed
// through RcuManagerRoot once every core has passed an event boundary.
//
// Lookup is heterogeneous: Find accepts any type the Hash/Eq policies take (e.g. a
// string_view probing a string-keyed table), so a datapath lookup never materializes a
// temporary key. Every node stores its hash, so chain traversal compares one integer before
// touching key bytes.
//
// The KeyOf policy (default: void) lets the value own the key bytes. With a non-void KeyOf,
// nodes store no key at all — KeyOf{}(value) reads it back (e.g. from an item block that
// already embeds the key) — and nodes are carved from the per-core slab allocator
// (mem::AllocRouted) with route-home frees, keeping table churn off the generic heap. Only
// owners whose lifetime sits inside their machine's (so slab blocks outlive the nodes)
// should opt in; the void default keeps plain new/delete and the embedded key copy.
#ifndef EBBRT_SRC_RCU_RCU_HASH_TABLE_H_
#define EBBRT_SRC_RCU_RCU_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/mem/gp_allocator.h"
#include "src/platform/spinlock.h"
#include "src/rcu/rcu.h"

namespace ebbrt {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<>, typename KeyOf = void>
class RcuHashTable {
  static constexpr bool kKeyFromValue = !std::is_void_v<KeyOf>;

 public:
  // `bucket_bits` fixes the table at 2^bits buckets (RCU-resizable tables exist; the paper's
  // stack uses a fixed-size table and so do we — sized generously by the owner).
  RcuHashTable(RcuManagerRoot& rcu, std::size_t bucket_bits)
      : rcu_(rcu), mask_((std::size_t{1} << bucket_bits) - 1),
        buckets_(std::size_t{1} << bucket_bits) {}

  ~RcuHashTable() {
    for (auto& bucket : buckets_) {
      Node* node = bucket.head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        Node* next = node->next.load(std::memory_order_relaxed);
        DeleteNode(node);
        node = next;
      }
    }
  }

  RcuHashTable(const RcuHashTable&) = delete;
  RcuHashTable& operator=(const RcuHashTable&) = delete;

  // Lock-free lookup, heterogeneous over anything Hash/Eq accept. The returned pointer is
  // guaranteed valid for the remainder of the current event (the RCU read-side section);
  // callers must not hold it across events.
  template <typename LK>
  V* Find(const LK& key) {
    std::size_t hash = Hash{}(key);
    Bucket& bucket = buckets_[hash & mask_];
    for (Node* node = bucket.head.load(std::memory_order_acquire); node != nullptr;
         node = node->next.load(std::memory_order_acquire)) {
      if (node->hash == hash && Eq{}(NodeKey(*node), key)) {
        return &node->value;
      }
    }
    return nullptr;
  }

  // Inserts (key, value); returns false (and drops value) if the key already exists.
  bool Insert(const K& key, V value) {
    std::size_t hash = Hash{}(key);
    Bucket& bucket = buckets_[hash & mask_];
    std::lock_guard<Spinlock> lock(bucket.mu);
    for (Node* node = bucket.head.load(std::memory_order_relaxed); node != nullptr;
         node = node->next.load(std::memory_order_relaxed)) {
      if (node->hash == hash && Eq{}(NodeKey(*node), key)) {
        return false;
      }
    }
    Node* node = NewNode(hash, key, std::move(value));
    node->next.store(bucket.head.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    bucket.head.store(node, std::memory_order_release);  // publish
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Inserts or replaces. Replacement unlinks the old node and RCU-defers its deletion, so
  // concurrent readers keep a valid (old) value.
  void InsertOrReplace(const K& key, V value) {
    std::size_t hash = Hash{}(key);
    Bucket& bucket = buckets_[hash & mask_];
    Node* node = NewNode(hash, key, std::move(value));
    Node* victim = nullptr;
    {
      std::lock_guard<Spinlock> lock(bucket.mu);
      std::atomic<Node*>* link = &bucket.head;
      Node* cursor = link->load(std::memory_order_relaxed);
      while (cursor != nullptr) {
        if (cursor->hash == hash && Eq{}(NodeKey(*cursor), key)) {
          victim = cursor;
          node->next.store(cursor->next.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
          link->store(node, std::memory_order_release);
          break;
        }
        link = &cursor->next;
        cursor = link->load(std::memory_order_relaxed);
      }
      if (victim == nullptr) {
        node->next.store(bucket.head.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        bucket.head.store(node, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (victim != nullptr) {
      rcu_.CallRcu([victim] { DeleteNode(victim); });
    }
  }

  // Replaces `key`'s value ONLY if the key is present — the check and the swap happen under
  // one bucket-lock hold, so a concurrent Erase cannot interleave between them and let a
  // replace resurrect a deleted key (memcached REPLACE semantics). Returns false (dropping
  // `value`) when the key is absent. The displaced node is RCU-deferred like any other
  // unlink, so in-flight readers keep the old value.
  bool ReplaceIfPresent(const K& key, V value) {
    std::size_t hash = Hash{}(key);
    Bucket& bucket = buckets_[hash & mask_];
    Node* node = NewNode(hash, key, std::move(value));
    Node* victim = nullptr;
    {
      std::lock_guard<Spinlock> lock(bucket.mu);
      std::atomic<Node*>* link = &bucket.head;
      Node* cursor = link->load(std::memory_order_relaxed);
      while (cursor != nullptr) {
        if (cursor->hash == hash && Eq{}(NodeKey(*cursor), key)) {
          victim = cursor;
          node->next.store(cursor->next.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
          link->store(node, std::memory_order_release);
          break;
        }
        link = &cursor->next;
        cursor = link->load(std::memory_order_relaxed);
      }
    }
    if (victim == nullptr) {
      DeleteNode(node);  // never published: no reader can hold it, free immediately
      return false;
    }
    rcu_.CallRcu([victim] { DeleteNode(victim); });
    return true;
  }

  // Unlinks `key`; deletion is deferred past a grace period. Returns false if absent.
  bool Erase(const K& key) { return Retire(Unlink(key, nullptr)); }

  // Unlinks `key` like Erase, but first COPIES its value into `*out` (under the bucket
  // lock, so exactly one concurrent Extract wins). The value is copied, never moved:
  // readers that found the node before the unlink may still be dereferencing it until the
  // grace period ends, so the node's contents must stay intact. This is the
  // claim-completion primitive the RPC pending tables use — whoever extracts the promise
  // fulfills it; a duplicate response finds nothing and is dropped.
  bool Extract(const K& key, V* out) { return Retire(Unlink(key, out)); }

  // Read-side iteration (same validity rules as Find).
  template <typename F>
  void ForEach(F&& f) {
    for (auto& bucket : buckets_) {
      for (Node* node = bucket.head.load(std::memory_order_acquire); node != nullptr;
           node = node->next.load(std::memory_order_acquire)) {
        f(NodeKey(*node), node->value);
      }
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  // Two node layouts, selected by the KeyOf policy. KeyedNode embeds a key copy (the
  // classic layout); KeylessNode reads the key back out of the value, shrinking the node to
  // {hash, value, next} — for a pointer-like V that's three words.
  struct KeyedNode {
    KeyedNode(std::size_t h, const K& k, V v) : hash(h), key(k), value(std::move(v)) {}
    std::size_t hash;
    K key;
    V value;
    std::atomic<KeyedNode*> next{nullptr};
  };
  struct KeylessNode {
    KeylessNode(std::size_t h, const K&, V v) : hash(h), value(std::move(v)) {}
    std::size_t hash;
    V value;
    std::atomic<KeylessNode*> next{nullptr};
  };
  using Node = std::conditional_t<kKeyFromValue, KeylessNode, KeyedNode>;
  struct Bucket {
    std::atomic<Node*> head{nullptr};
    Spinlock mu;
  };

  static decltype(auto) NodeKey(const Node& node) {
    if constexpr (kKeyFromValue) {
      return KeyOf{}(node.value);
    } else {
      return (node.key);
    }
  }

  // KeyOf tables carve nodes from the per-core slab plane with route-home frees (an RCU
  // callback may run the delete on a different core than the insert); void-KeyOf tables
  // keep plain new/delete so owners with arbitrary lifetimes stay safe.
  static Node* NewNode(std::size_t hash, const K& key, V value) {
    if constexpr (kKeyFromValue) {
      void* p = mem::AllocRouted(sizeof(Node));
      return new (p) Node(hash, key, std::move(value));
    } else {
      return new Node(hash, key, std::move(value));
    }
  }
  static void DeleteNode(Node* node) {
    if constexpr (kKeyFromValue) {
      node->~Node();
      mem::FreeRouted(node);
    } else {
      delete node;
    }
  }

  // Locked unlink of `key`'s node, copying its value into *out when non-null. Returns the
  // unlinked (not yet reclaimed) node, or nullptr when absent — the one traversal Erase
  // and Extract share.
  Node* Unlink(const K& key, V* out) {
    std::size_t hash = Hash{}(key);
    Bucket& bucket = buckets_[hash & mask_];
    std::lock_guard<Spinlock> lock(bucket.mu);
    std::atomic<Node*>* link = &bucket.head;
    Node* cursor = link->load(std::memory_order_relaxed);
    while (cursor != nullptr) {
      if (cursor->hash == hash && Eq{}(NodeKey(*cursor), key)) {
        if (out != nullptr) {
          *out = cursor->value;
        }
        link->store(cursor->next.load(std::memory_order_relaxed),
                    std::memory_order_release);
        return cursor;
      }
      link = &cursor->next;
      cursor = link->load(std::memory_order_relaxed);
    }
    return nullptr;
  }

  // Accounts for and RCU-defers an unlinked node. False when there was none.
  bool Retire(Node* victim) {
    if (victim == nullptr) {
      return false;
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    rcu_.CallRcu([victim] { DeleteNode(victim); });
    return true;
  }

  RcuManagerRoot& rcu_;
  std::size_t mask_;
  std::vector<Bucket> buckets_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_RCU_RCU_HASH_TABLE_H_
