// RcuHashTable — lock-free readers, per-bucket-locked writers, RCU-deferred reclamation.
//
// The EbbRT network stack "stores connection state in an RCU hash table which allows common
// connection lookup operations to proceed without any atomic operations" (§3.6); memcached's
// key/value store uses the same structure to avoid the lock contention that limits stock
// memcached's scalability (§4.2).
//
// Readers traverse bucket chains through release/consume-ordered next pointers — plain loads
// on x86 — and never synchronize. Writers serialize per bucket; erased nodes are reclaimed
// through RcuManagerRoot once every core has passed an event boundary.
#ifndef EBBRT_SRC_RCU_RCU_HASH_TABLE_H_
#define EBBRT_SRC_RCU_RCU_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/platform/spinlock.h"
#include "src/rcu/rcu.h"

namespace ebbrt {

template <typename K, typename V, typename Hash = std::hash<K>>
class RcuHashTable {
 public:
  // `bucket_bits` fixes the table at 2^bits buckets (RCU-resizable tables exist; the paper's
  // stack uses a fixed-size table and so do we — sized generously by the owner).
  RcuHashTable(RcuManagerRoot& rcu, std::size_t bucket_bits)
      : rcu_(rcu), mask_((std::size_t{1} << bucket_bits) - 1),
        buckets_(std::size_t{1} << bucket_bits) {}

  ~RcuHashTable() {
    for (auto& bucket : buckets_) {
      Node* node = bucket.head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        Node* next = node->next.load(std::memory_order_relaxed);
        delete node;
        node = next;
      }
    }
  }

  RcuHashTable(const RcuHashTable&) = delete;
  RcuHashTable& operator=(const RcuHashTable&) = delete;

  // Lock-free lookup. The returned pointer is guaranteed valid for the remainder of the
  // current event (the RCU read-side section); callers must not hold it across events.
  V* Find(const K& key) {
    Bucket& bucket = BucketFor(key);
    for (Node* node = bucket.head.load(std::memory_order_acquire); node != nullptr;
         node = node->next.load(std::memory_order_acquire)) {
      if (node->key == key) {
        return &node->value;
      }
    }
    return nullptr;
  }

  // Inserts (key, value); returns false (and drops value) if the key already exists.
  bool Insert(const K& key, V value) {
    Bucket& bucket = BucketFor(key);
    std::lock_guard<Spinlock> lock(bucket.mu);
    for (Node* node = bucket.head.load(std::memory_order_relaxed); node != nullptr;
         node = node->next.load(std::memory_order_relaxed)) {
      if (node->key == key) {
        return false;
      }
    }
    Node* node = new Node(key, std::move(value));
    node->next.store(bucket.head.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    bucket.head.store(node, std::memory_order_release);  // publish
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Inserts or replaces. Replacement unlinks the old node and RCU-defers its deletion, so
  // concurrent readers keep a valid (old) value.
  void InsertOrReplace(const K& key, V value) {
    Bucket& bucket = BucketFor(key);
    Node* node = new Node(key, std::move(value));
    Node* victim = nullptr;
    {
      std::lock_guard<Spinlock> lock(bucket.mu);
      std::atomic<Node*>* link = &bucket.head;
      Node* cursor = link->load(std::memory_order_relaxed);
      while (cursor != nullptr) {
        if (cursor->key == key) {
          victim = cursor;
          node->next.store(cursor->next.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
          link->store(node, std::memory_order_release);
          break;
        }
        link = &cursor->next;
        cursor = link->load(std::memory_order_relaxed);
      }
      if (victim == nullptr) {
        node->next.store(bucket.head.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        bucket.head.store(node, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (victim != nullptr) {
      rcu_.CallRcu([victim] { delete victim; });
    }
  }

  // Unlinks `key`; deletion is deferred past a grace period. Returns false if absent.
  bool Erase(const K& key) { return Retire(Unlink(key, nullptr)); }

  // Unlinks `key` like Erase, but first COPIES its value into `*out` (under the bucket
  // lock, so exactly one concurrent Extract wins). The value is copied, never moved:
  // readers that found the node before the unlink may still be dereferencing it until the
  // grace period ends, so the node's contents must stay intact. This is the
  // claim-completion primitive the RPC pending tables use — whoever extracts the promise
  // fulfills it; a duplicate response finds nothing and is dropped.
  bool Extract(const K& key, V* out) { return Retire(Unlink(key, out)); }

  // Read-side iteration (same validity rules as Find).
  template <typename F>
  void ForEach(F&& f) {
    for (auto& bucket : buckets_) {
      for (Node* node = bucket.head.load(std::memory_order_acquire); node != nullptr;
           node = node->next.load(std::memory_order_acquire)) {
        f(node->key, node->value);
      }
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  struct Node {
    Node(const K& k, V v) : key(k), value(std::move(v)) {}
    K key;
    V value;
    std::atomic<Node*> next{nullptr};
  };
  struct Bucket {
    std::atomic<Node*> head{nullptr};
    Spinlock mu;
  };

  Bucket& BucketFor(const K& key) { return buckets_[Hash{}(key)&mask_]; }

  // Locked unlink of `key`'s node, copying its value into *out when non-null. Returns the
  // unlinked (not yet reclaimed) node, or nullptr when absent — the one traversal Erase
  // and Extract share.
  Node* Unlink(const K& key, V* out) {
    Bucket& bucket = BucketFor(key);
    std::lock_guard<Spinlock> lock(bucket.mu);
    std::atomic<Node*>* link = &bucket.head;
    Node* cursor = link->load(std::memory_order_relaxed);
    while (cursor != nullptr) {
      if (cursor->key == key) {
        if (out != nullptr) {
          *out = cursor->value;
        }
        link->store(cursor->next.load(std::memory_order_relaxed),
                    std::memory_order_release);
        return cursor;
      }
      link = &cursor->next;
      cursor = link->load(std::memory_order_relaxed);
    }
    return nullptr;
  }

  // Accounts for and RCU-defers an unlinked node. False when there was none.
  bool Retire(Node* victim) {
    if (victim == nullptr) {
      return false;
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    rcu_.CallRcu([victim] { delete victim; });
    return true;
  }

  RcuManagerRoot& rcu_;
  std::size_t mask_;
  std::vector<Bucket> buckets_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_RCU_RCU_HASH_TABLE_H_
