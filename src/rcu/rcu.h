// RCU for a non-preemptive event system (§3.6).
//
// "Due to the event-driven execution model of EbbRT, RCU is a natural primitive to provide.
// Because we lack preemption, entering and exiting RCU critical sections have no cost."
//
// A read-side critical section is any stretch of code within one event handler: handlers are
// never preempted and never migrate, so a reader observed "in" a structure is guaranteed out
// of it once its core dispatches the next event. A grace period therefore elapses once every
// core of the machine has passed an event boundary. CallRcu arranges exactly that — but
// instead of broadcasting one marker event per callback (N cores × M callbacks for an event
// that erases M entries), callbacks issued during one event COALESCE into a per-core batch
// that is flushed at the event's end-of-event hook as a single *epoch*: one heap object
// carrying the whole callback batch plus one embedded interconnect marker node per core.
// Each marker fires on its core's dispatch loop — by definition at an event boundary — and
// the last one to fire runs the batch and frees the epoch.
//
// Marker delivery: remote cores get the embedded node pushed onto the lock-free
// interconnect; the issuing core's own marker is queued as a local synthetic event, so it
// runs behind everything that core spawned before the epoch started (the ordering the
// deferred-reclamation tests pin).
//
// Readers: zero instructions. Updaters: one epoch per (core, event boundary) regardless of
// how many callbacks the event issued.
#ifndef EBBRT_SRC_RCU_RCU_H_
#define EBBRT_SRC_RCU_RCU_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/runtime.h"
#include "src/platform/move_function.h"

namespace ebbrt {

class EventManagerRoot;

class RcuManagerRoot {
 public:
  explicit RcuManagerRoot(Runtime& runtime) : runtime_(runtime) {}

  // Runs `fn` after a grace period: once every core of this machine has passed an event
  // boundary. `fn` executes on whichever core completes the grace period (on its loop
  // stack — callbacks must not block). Callbacks issued during one event share one epoch,
  // flushed at the event's boundary. When the machine has no event loops (unit-test
  // contexts), `fn` runs immediately — there are no concurrent event-borne readers to wait
  // for.
  void CallRcu(MoveFunction<void()> fn);

  // Installs (or returns) the machine's RCU root.
  static RcuManagerRoot& For(Runtime& runtime);

  // Telemetry (pinned by tests): grace-period epochs started, callbacks accepted, and
  // callbacks that joined an already-open per-core batch instead of paying for their own
  // broadcast.
  std::uint64_t epochs_started() const {
    return epochs_.load(std::memory_order_relaxed);
  }
  std::uint64_t callbacks_queued() const {
    return callbacks_.load(std::memory_order_relaxed);
  }
  std::uint64_t callbacks_coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

 private:
  struct Epoch;         // defined in rcu.cc: callback batch + embedded per-core marker nodes
  struct CallbackNode;  // one queued callback, slab-carved (mem::AllocRouted), intrusively
                        // linked — a CallRcu on the datapath costs zero generic-heap allocs

  // Per-core pending batch, filled only by its own core between an event's first CallRcu
  // and the end-of-event flush. Fixed-size array so a hook can hold a stable pointer. The
  // batch is an intrusive FIFO of CallbackNodes (head/tail), not a vector: a vector's
  // storage is moved away at every flush, so each event's first callback would re-allocate
  // it — a steady per-op heap rate on write-heavy workloads that the item-plane gates
  // (fig13) now measure.
  struct alignas(64) CoreBatch {
    CallbackNode* head = nullptr;
    CallbackNode* tail = nullptr;
    bool hook_armed = false;
  };
  static constexpr std::size_t kMaxBatchedCores = 64;

  void StartEpoch(CallbackNode* head, EventManagerRoot& em_root);

  Runtime& runtime_;
  std::array<CoreBatch, kMaxBatchedCores> batches_;
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<std::uint64_t> callbacks_{0};
  std::atomic<std::uint64_t> coalesced_{0};
};

namespace rcu {
// Defers `fn` past a grace period on the current machine.
inline void Call(MoveFunction<void()> fn) {
  RcuManagerRoot::For(CurrentRuntime()).CallRcu(std::move(fn));
}
}  // namespace rcu

}  // namespace ebbrt

#endif  // EBBRT_SRC_RCU_RCU_H_
