// RCU for a non-preemptive event system (§3.6).
//
// "Due to the event-driven execution model of EbbRT, RCU is a natural primitive to provide.
// Because we lack preemption, entering and exiting RCU critical sections have no cost."
//
// A read-side critical section is any stretch of code within one event handler: handlers are
// never preempted and never migrate, so a reader observed "in" a structure is guaranteed out
// of it once its core dispatches the next event. A grace period therefore elapses once every
// core of the machine has dispatched one more event. CallRcu broadcasts a marker event to all
// cores; when the last marker runs, every pre-existing reader has finished and the callback
// (typically `delete node`) is safe to run.
//
// Readers: zero instructions. Updaters: one broadcast per reclamation batch.
#ifndef EBBRT_SRC_RCU_RCU_H_
#define EBBRT_SRC_RCU_RCU_H_

#include <atomic>
#include <memory>

#include "src/core/runtime.h"
#include "src/event/event_manager.h"
#include "src/platform/move_function.h"

namespace ebbrt {

class RcuManagerRoot {
 public:
  explicit RcuManagerRoot(Runtime& runtime) : runtime_(runtime) {}

  // Runs `fn` after a grace period: once every core of this machine has passed an event
  // boundary. `fn` executes on whichever core completes the grace period. When the machine
  // has no event loops (unit-test contexts), `fn` runs immediately — there are no concurrent
  // event-borne readers to wait for.
  void CallRcu(MoveFunction<void()> fn) {
    auto* em_root =
        runtime_.TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
    std::size_t cores = runtime_.num_cores();
    if (em_root == nullptr || cores == 0) {
      fn();
      return;
    }
    struct Grace {
      std::atomic<std::size_t> remaining;
      MoveFunction<void()> fn;
    };
    auto grace = std::make_shared<Grace>();
    grace->remaining.store(cores, std::memory_order_relaxed);
    grace->fn = std::move(fn);
    for (std::size_t core = 0; core < cores; ++core) {
      em_root->RepFor(core).Spawn([grace] {
        if (grace->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          grace->fn();
        }
      });
    }
  }

  // Installs (or returns) the machine's RCU root.
  static RcuManagerRoot& For(Runtime& runtime) {
    auto* root = runtime.TryGetSubsystem<RcuManagerRoot>(Subsystem::kRcuManager);
    if (root == nullptr) {
      root = new RcuManagerRoot(runtime);
      runtime.SetSubsystem(Subsystem::kRcuManager, root);
      runtime.InstallRoot(kRcuManagerId, root);
    }
    return *root;
  }

 private:
  Runtime& runtime_;
};

namespace rcu {
// Defers `fn` past a grace period on the current machine.
inline void Call(MoveFunction<void()> fn) {
  RcuManagerRoot::For(CurrentRuntime()).CallRcu(std::move(fn));
}
}  // namespace rcu

}  // namespace ebbrt

#endif  // EBBRT_SRC_RCU_RCU_H_
