#include "src/rcu/rcu.h"

#include <memory>
#include <new>
#include <utility>

#include "src/event/event_manager.h"
#include "src/event/interconnect.h"
#include "src/mem/gp_allocator.h"

namespace ebbrt {

// One queued callback. Carved from the per-core allocator (heap fallback outside a machine
// context) and linked intrusively into its core's batch, so the datapath cost of deferring
// a reclamation is one slab pop — never a generic-heap allocation, never a vector growth.
// The MoveFunction's own small buffer holds the typical capture (a victim pointer) inline.
struct RcuManagerRoot::CallbackNode {
  explicit CallbackNode(MoveFunction<void()> f) : fn(std::move(f)) {}

  static CallbackNode* New(MoveFunction<void()> fn) {
    void* p = mem::AllocRouted(sizeof(CallbackNode));
    return new (p) CallbackNode(std::move(fn));
  }
  static void Delete(CallbackNode* node) {
    node->~CallbackNode();
    mem::FreeRouted(node);
  }

  MoveFunction<void()> fn;
  CallbackNode* next = nullptr;
};

// One grace period in flight: the coalesced callback batch plus one embedded interconnect
// marker per core — a single slab-carved block per (core, event boundary), however many
// callbacks the event issued (markers trail the struct in the same allocation). A marker
// firing on its core's dispatch loop IS that core's event boundary; the last core to fire
// runs the batch (FIFO, so an erase's reclamation precedes a later-queued check) and frees
// the epoch. FreeRouted routes the block home from whichever core completes the grace
// period — the same cross-core free discipline the item blocks themselves ride.
struct RcuManagerRoot::Epoch {
  struct Marker final : InterconnectNode {
    void Fire(EventManager&) override { epoch->Complete(); }
    // Teardown drain: no event loops remain, so no reader can still hold a reference —
    // completing (rather than dropping) the epoch lets pending reclamations run instead of
    // leaking.
    void Discard() override { epoch->Complete(); }
    Epoch* epoch = nullptr;
  };

  static Epoch* New(std::size_t cores, CallbackNode* head) {
    static_assert(alignof(Epoch) >= alignof(Marker), "markers trail the Epoch in one block");
    void* p = mem::AllocRouted(sizeof(Epoch) + cores * sizeof(Marker));
    auto* epoch = new (p) Epoch;
    epoch->remaining.store(cores, std::memory_order_relaxed);
    epoch->head = head;
    epoch->cores = cores;
    for (std::size_t i = 0; i < cores; ++i) {
      Marker* m = new (epoch->markers() + i) Marker;
      m->epoch = epoch;
    }
    return epoch;
  }

  Marker* markers() { return reinterpret_cast<Marker*>(this + 1); }

  void Complete() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      CallbackNode* node = head;
      while (node != nullptr) {
        CallbackNode* next = node->next;
        node->fn();
        CallbackNode::Delete(node);
        node = next;
      }
      std::size_t n = cores;
      for (std::size_t i = 0; i < n; ++i) {
        markers()[i].~Marker();
      }
      this->~Epoch();
      mem::FreeRouted(this);
    }
  }

  std::atomic<std::size_t> remaining{0};
  CallbackNode* head = nullptr;
  std::size_t cores = 0;
};

void RcuManagerRoot::CallRcu(MoveFunction<void()> fn) {
  auto* em_root = runtime_.TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
  if (em_root == nullptr || em_root->num_cores() == 0) {
    // No event loops: no concurrent event-borne readers exist, run immediately.
    fn();
    return;
  }
  callbacks_.fetch_add(1, std::memory_order_relaxed);
  if (HaveContext() && CurrentContext().runtime == &runtime_) {
    std::size_t core = CurrentContext().machine_core;
    if (core < kMaxBatchedCores && core < em_root->num_cores()) {
      EventManager& rep = em_root->RepFor(core);
      if (rep.dispatching_event()) {
        // Inside an event on this machine: join (or open) this event's batch. One epoch per
        // (core, boundary) replaces one broadcast per callback.
        CoreBatch& batch = batches_[core];
        if (batch.hook_armed) {
          coalesced_.fetch_add(1, std::memory_order_relaxed);
        } else {
          batch.hook_armed = true;
          rep.QueueEndOfEvent([this, &batch, em_root] {
            batch.hook_armed = false;
            CallbackNode* head = batch.head;
            batch.head = nullptr;
            batch.tail = nullptr;
            StartEpoch(head, *em_root);
          });
        }
        CallbackNode* node = CallbackNode::New(std::move(fn));
        if (batch.tail != nullptr) {
          batch.tail->next = node;
        } else {
          batch.head = node;
        }
        batch.tail = node;
        return;
      }
    }
  }
  // Not inside an event (world action, loop-stack hook, bring-up): broadcast right away.
  StartEpoch(CallbackNode::New(std::move(fn)), *em_root);
}

void RcuManagerRoot::StartEpoch(CallbackNode* head, EventManagerRoot& em_root) {
  if (head == nullptr) {
    return;
  }
  std::size_t cores = em_root.num_cores();
  Epoch* epoch = Epoch::New(cores, head);
  epochs_.fetch_add(1, std::memory_order_relaxed);
  // The issuing core's marker must not overtake events it already queued locally (they ride
  // the local synthetic queue, which drains after the interconnect): send it through Spawn so
  // it lines up behind them. Everyone else gets the embedded node on the lock-free mesh —
  // it fires on their loop, i.e. at their next event boundary.
  std::size_t self = cores;  // sentinel: no self rep
  if (HaveContext() && CurrentContext().runtime == &runtime_ &&
      CurrentContext().machine_core < cores) {
    self = CurrentContext().machine_core;
  }
  for (std::size_t core = 0; core < cores; ++core) {
    if (core == self) {
      em_root.RepFor(core).Spawn([epoch] { epoch->Complete(); });
    } else {
      em_root.interconnect().Push(core, &epoch->markers()[core]);
    }
  }
}

RcuManagerRoot& RcuManagerRoot::For(Runtime& runtime) {
  auto* root = runtime.TryGetSubsystem<RcuManagerRoot>(Subsystem::kRcuManager);
  if (root == nullptr) {
    auto owned = std::make_shared<RcuManagerRoot>(runtime);
    root = owned.get();
    runtime.SetSubsystem(Subsystem::kRcuManager, root);
    runtime.InstallRoot(kRcuManagerId, root);
    runtime.Adopt(std::move(owned));  // dies with the machine (the old code leaked it)
  }
  return *root;
}

}  // namespace ebbrt
