#include "src/rcu/rcu.h"

#include <memory>
#include <utility>

#include "src/event/event_manager.h"
#include "src/event/interconnect.h"

namespace ebbrt {

// One grace period in flight: the coalesced callback batch plus one embedded interconnect
// marker per core — a single allocation per (core, event boundary), however many callbacks
// the event issued. A marker firing on its core's dispatch loop IS that core's event
// boundary; the last core to fire runs the batch (FIFO, so an erase's reclamation precedes
// a later-queued check) and frees the epoch.
struct RcuManagerRoot::Epoch {
  struct Marker final : InterconnectNode {
    void Fire(EventManager&) override { epoch->Complete(); }
    // Teardown drain: no event loops remain, so no reader can still hold a reference —
    // completing (rather than dropping) the epoch lets pending reclamations run instead of
    // leaking.
    void Discard() override { epoch->Complete(); }
    Epoch* epoch = nullptr;
  };

  explicit Epoch(std::size_t cores) : remaining(cores), markers(cores) {
    for (Marker& m : markers) {
      m.epoch = this;
    }
  }

  void Complete() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      for (MoveFunction<void()>& fn : fns) {
        fn();
      }
      delete this;
    }
  }

  std::atomic<std::size_t> remaining;
  std::vector<MoveFunction<void()>> fns;
  std::vector<Marker> markers;
};

void RcuManagerRoot::CallRcu(MoveFunction<void()> fn) {
  auto* em_root = runtime_.TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
  if (em_root == nullptr || em_root->num_cores() == 0) {
    // No event loops: no concurrent event-borne readers exist, run immediately.
    fn();
    return;
  }
  callbacks_.fetch_add(1, std::memory_order_relaxed);
  if (HaveContext() && CurrentContext().runtime == &runtime_) {
    std::size_t core = CurrentContext().machine_core;
    if (core < kMaxBatchedCores && core < em_root->num_cores()) {
      EventManager& rep = em_root->RepFor(core);
      if (rep.dispatching_event()) {
        // Inside an event on this machine: join (or open) this event's batch. One epoch per
        // (core, boundary) replaces one broadcast per callback.
        CoreBatch& batch = batches_[core];
        if (batch.hook_armed) {
          coalesced_.fetch_add(1, std::memory_order_relaxed);
        } else {
          batch.hook_armed = true;
          rep.QueueEndOfEvent([this, &batch, em_root] {
            batch.hook_armed = false;
            std::vector<MoveFunction<void()>> fns = std::move(batch.fns);
            batch.fns.clear();
            StartEpoch(std::move(fns), *em_root);
          });
        }
        batch.fns.push_back(std::move(fn));
        return;
      }
    }
  }
  // Not inside an event (world action, loop-stack hook, bring-up): broadcast right away.
  std::vector<MoveFunction<void()>> one;
  one.push_back(std::move(fn));
  StartEpoch(std::move(one), *em_root);
}

void RcuManagerRoot::StartEpoch(std::vector<MoveFunction<void()>> fns,
                                EventManagerRoot& em_root) {
  if (fns.empty()) {
    return;
  }
  std::size_t cores = em_root.num_cores();
  auto* epoch = new Epoch(cores);
  epoch->fns = std::move(fns);
  epochs_.fetch_add(1, std::memory_order_relaxed);
  // The issuing core's marker must not overtake events it already queued locally (they ride
  // the local synthetic queue, which drains after the interconnect): send it through Spawn so
  // it lines up behind them. Everyone else gets the embedded node on the lock-free mesh —
  // it fires on their loop, i.e. at their next event boundary.
  std::size_t self = cores;  // sentinel: no self rep
  if (HaveContext() && CurrentContext().runtime == &runtime_ &&
      CurrentContext().machine_core < cores) {
    self = CurrentContext().machine_core;
  }
  for (std::size_t core = 0; core < cores; ++core) {
    if (core == self) {
      em_root.RepFor(core).Spawn([epoch] { epoch->Complete(); });
    } else {
      em_root.interconnect().Push(core, &epoch->markers[core]);
    }
  }
}

RcuManagerRoot& RcuManagerRoot::For(Runtime& runtime) {
  auto* root = runtime.TryGetSubsystem<RcuManagerRoot>(Subsystem::kRcuManager);
  if (root == nullptr) {
    auto owned = std::make_shared<RcuManagerRoot>(runtime);
    root = owned.get();
    runtime.SetSubsystem(Subsystem::kRcuManager, root);
    runtime.InstallRoot(kRcuManagerId, root);
    runtime.Adopt(std::move(owned));  // dies with the machine (the old code leaked it)
  }
  return *root;
}

}  // namespace ebbrt
