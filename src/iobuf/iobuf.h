// IOBuf — ownership descriptor + view over a region of memory (paper §3.6).
//
// "An IOBuf is a descriptor which manages ownership of a region of memory as well as a view of
// a portion of that memory." Device drivers pass IOBufs up the stack synchronously; each
// protocol layer Advance()s past its header rather than copying; applications receive the same
// descriptor the DMA engine filled. Sends accept *chains* of IOBufs so headers and payload
// from different owners are scatter/gathered without copies.
//
// Layout of a single buffer:
//
//     buffer_                data_                   data_+length_      buffer_+capacity_
//        |--- headroom ---------|------ view ------------|----- tailroom -----|
//
// Chains are singly linked through owned `next_` pointers; typical chains are 1–4 elements
// (header + payload), so tail walks are O(1)-ish and kept simple.
//
// Ownership is reference-counted (folly/EbbRT style): owned storage lives behind a shared
// control block so Clone()/Split() produce additional zero-copy views of the same bytes.
// Clones therefore observe writes through any sibling view — the datapath treats received
// buffers as immutable once shared.
//
// Allocation (§3.4): owned storage is ONE block — the SharedStorage control header and the
// bytes co-allocated — taken from the current machine's per-core GeneralPurposeAllocator
// (slab fast path, no atomics) whenever a machine context is installed, falling back to
// std::malloc only outside any machine (unit tests, world actions). The IOBuf descriptor
// itself is slab-backed the same way via class operator new. Release routes the block home
// from wherever the last view dies (mem::FindOwningRoot), so the steady-state datapath does
// zero malloc/free calls; mem::stats() counts every allocation and each heap fallback.
//
// Lifetime invariant: storage allocated under a machine context lives in that machine's
// arena — exactly like the DMA-able memory it models, it dies with the machine. Release
// every owned buffer before tearing the machine down (tests: before the SimWorld is
// destroyed); a view that outlives its machine dangles into an unmapped arena.
#ifndef EBBRT_SRC_IOBUF_IOBUF_H_
#define EBBRT_SRC_IOBUF_IOBUF_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "src/mem/gp_allocator.h"
#include "src/platform/debug.h"

namespace ebbrt {

class BufferPool;

class IOBuf {
 public:
  // Free-function type invoked to release externally-owned storage.
  using FreeFn = void (*)(void* buffer, void* arg);

  // A buffer of `capacity` bytes with the view covering the whole capacity (EbbRT's
  // MakeUniqueIOBuf convention). When `zero` is set the storage is zero-filled.
  static std::unique_ptr<IOBuf> Create(std::size_t capacity, bool zero = false);

  // A buffer of `capacity` bytes with an *empty* view positioned `headroom` bytes in; callers
  // extend with Append()/Prepend(). Useful for building headers in front of payload.
  static std::unique_ptr<IOBuf> CreateReserve(std::size_t capacity, std::size_t headroom);

  // Compile-time-capacity variant of CreateReserve for buffers whose size is static (protocol
  // header reserves): the GP size-class computation constant-folds (AllocFor<N>), leaving
  // only the per-core slab freelist pop — the property the paper observed the compiler give
  // sized malloc calls (§3.4).
  template <std::size_t Capacity>
  static std::unique_ptr<IOBuf> CreateReserveFor(std::size_t headroom) {
    constexpr std::size_t kBlock = kStorageHeaderBytes + (Capacity != 0 ? Capacity : 1);
    return FromStorageBlock(TryGpBlockFor<kBlock>(), Capacity, headroom, /*length=*/0,
                            /*zero=*/false);
  }

  // Copies [data, data+len) into a new owned buffer (with optional headroom).
  static std::unique_ptr<IOBuf> CopyBuffer(const void* data, std::size_t len,
                                           std::size_t headroom = 0);
  static std::unique_ptr<IOBuf> CopyBuffer(std::string_view sv, std::size_t headroom = 0) {
    return CopyBuffer(sv.data(), sv.size(), headroom);
  }

  // Wraps external memory without taking ownership. The caller guarantees the memory outlives
  // the IOBuf (e.g. static protocol constants, arena-backed stores).
  static std::unique_ptr<IOBuf> WrapBuffer(const void* data, std::size_t len);

  // Takes ownership of external memory; `free_fn(buffer, arg)` is called when the last view
  // of the storage is destroyed.
  static std::unique_ptr<IOBuf> TakeOwnership(void* buffer, std::size_t capacity,
                                              std::size_t length, FreeFn free_fn, void* arg);

  ~IOBuf();

  IOBuf(const IOBuf&) = delete;
  IOBuf& operator=(const IOBuf&) = delete;

  // --- View of this element ---------------------------------------------------------------
  const std::uint8_t* Data() const { return data_; }
  std::uint8_t* WritableData() { return data_; }
  std::size_t Length() const { return length_; }
  std::size_t Capacity() const { return capacity_; }
  const std::uint8_t* Buffer() const { return buffer_; }
  const std::uint8_t* Tail() const { return data_ + length_; }
  std::uint8_t* WritableTail() { return data_ + length_; }
  std::size_t Headroom() const { return static_cast<std::size_t>(data_ - buffer_); }
  std::size_t Tailroom() const {
    return static_cast<std::size_t>((buffer_ + capacity_) - Tail());
  }

  // True when other views (clones / splits) reference this element's storage.
  bool Shared() const;

  // Number of live views (this one included) of this element's owned storage; 0 for a
  // non-owning view. Lets tests assert a parse/join was zero-copy: a value extracted by
  // sharing keeps the producer's count > 1, a value extracted by memcpy drops to a fresh
  // storage block with count 1.
  std::size_t StorageRefCount() const;

  // Shrinks the view from the front (protocol layers step past their headers).
  void Advance(std::size_t amount) {
    Kassert(amount <= length_, "IOBuf::Advance past end");
    data_ += amount;
    length_ -= amount;
  }

  // Grows the view backwards into headroom (prepending a header into reserved space).
  void Retreat(std::size_t amount) {
    Kassert(amount <= Headroom(), "IOBuf::Retreat past start");
    data_ -= amount;
    length_ += amount;
  }

  // Grows the view forward into tailroom.
  void Append(std::size_t amount) {
    Kassert(amount <= Tailroom(), "IOBuf::Append past capacity");
    length_ += amount;
  }

  void TrimEnd(std::size_t amount) {
    Kassert(amount <= length_, "IOBuf::TrimEnd past start");
    length_ -= amount;
  }

  void TrimStart(std::size_t amount) { Advance(amount); }

  // Reinterprets the front of the view as a (packed) structure — Figure 2's
  // `buf->Get<EthernetHeader>()`.
  template <typename T>
  T& Get(std::size_t offset = 0) {
    Kassert(offset + sizeof(T) <= length_, "IOBuf::Get: view too short");
    return *reinterpret_cast<T*>(data_ + offset);
  }

  template <typename T>
  const T& Get(std::size_t offset = 0) const {
    Kassert(offset + sizeof(T) <= length_, "IOBuf::Get: view too short");
    return *reinterpret_cast<const T*>(data_ + offset);
  }

  // --- Chain operations ---------------------------------------------------------------------
  IOBuf* Next() { return next_.get(); }
  const IOBuf* Next() const { return next_.get(); }
  bool IsChained() const { return next_ != nullptr; }

  // Appends `chain` at the tail of this chain (scatter/gather send path).
  void AppendChain(std::unique_ptr<IOBuf> chain);

  // Splices `parts` into one chain in order (nullptr entries skipped), returning the head.
  // O(total elements): the running tail is carried across parts instead of re-walking from
  // the head per append, which matters when a batched reply splices hundreds of per-key
  // view pairs (AppendChain in a loop is quadratic in chain length). Zero-copy: only next_
  // pointers move.
  static std::unique_ptr<IOBuf> JoinChains(std::vector<std::unique_ptr<IOBuf>> parts);

  // Detaches and returns everything after this element.
  std::unique_ptr<IOBuf> Pop() { return std::move(next_); }

  std::size_t CountChainElements() const;
  std::size_t ComputeChainDataLength() const;

  // Zero-copy clone: a new chain of views that share (and refcount) this chain's storage.
  // The cheap path everywhere a second reader needs the same bytes.
  std::unique_ptr<IOBuf> Clone() const;
  // Clones only this element (no chain walk), sharing its storage.
  std::unique_ptr<IOBuf> CloneOne() const;

  // Deep copy of the whole chain into a single new owned buffer — used where the bytes must
  // be detached from the producer's storage (e.g. the simulated fabric boundary).
  std::unique_ptr<IOBuf> DeepClone() const;

  // Splits the chain at byte offset `n`: this chain keeps [0, n), the returned chain holds
  // [n, end). An element straddling the boundary is shared between the two chains via
  // refcounted views — no bytes are copied.
  std::unique_ptr<IOBuf> Split(std::size_t n);

  // Flattens the whole chain into this element, reallocating if needed. Used sparingly (e.g.
  // reassembling an application record that crossed segment boundaries); the fast paths never
  // coalesce.
  void Coalesce();

  // Copies the first `len` bytes of the chain's data into `dst` (chain-aware memcpy-out).
  void CopyOut(void* dst, std::size_t len, std::size_t offset = 0) const;

  std::string_view AsStringView() const {
    return {reinterpret_cast<const char*>(data_), length_};
  }

  // The descriptor itself is slab-backed (AllocFor<sizeof(IOBuf)> constant-folds to the
  // per-core freelist pop); delete routes the block home by pointer, so a descriptor may be
  // destroyed on a different core/machine/context than allocated it.
  static void* operator new(std::size_t size);
  static void operator delete(void* p);
  static void operator delete(void* p, std::size_t) { operator delete(p); }

  // True when this element's owned storage control block is embedded in the same allocation
  // as the bytes (the one-slab-allocation layout; asserted by tests).
  bool StorageEmbedded() const;

  // The compile-time-size slab attempt: nullptr when no machine context / no memory
  // subsystem / arena exhausted — callers fall back to the generic block path. The single
  // place the context->GP-root lookup lives for static sizes (AllocBlock in iobuf.cc is its
  // runtime-size twin).
  template <std::size_t N>
  static void* TryGpBlockFor() {
    if (!HaveContext()) {
      return nullptr;
    }
    auto* root = CurrentRuntime().TryGetSubsystem<GeneralPurposeAllocatorRoot>(
        Subsystem::kGeneralPurposeAllocator);
    if (root == nullptr) {
      return nullptr;
    }
    return GeneralPurposeAllocator::Instance()->AllocFor<N>();
  }

  // Co-allocated block layout: [SharedStorage][bytes]; the header is padded so the data area
  // keeps max_align.
  static constexpr std::size_t kStorageHeaderBytes = 64;

 private:
  friend class BufferPool;
  friend class BufferPoolRoot;

  // Shared control block for owned storage. Non-owning views carry no block. The count is
  // atomic because clones of a received chain may be retained by another core (e.g. a
  // response queued on a different connection) and released there. `dispose` releases the
  // buffer AND the control block when the last view dies — each allocation flavor
  // (co-allocated slab/heap block, external TakeOwnership, pooled frame) installs its own.
  struct SharedStorage {
    std::uint8_t* buffer;
    void (*dispose)(SharedStorage*);
    FreeFn free_fn;    // TakeOwnership's user callback (nullptr otherwise)
    void* free_arg;    // TakeOwnership arg, or the owning BufferPoolRoot for pooled frames
    std::uint32_t origin_core;  // machine core a pooled frame belongs to
    std::atomic<std::size_t> refs{1};
  };
  static_assert(sizeof(SharedStorage) <= kStorageHeaderBytes,
                "SharedStorage must fit the co-allocated header");

  IOBuf(std::uint8_t* buffer, std::size_t capacity, std::uint8_t* data, std::size_t length,
        SharedStorage* storage)
      : buffer_(buffer),
        capacity_(capacity),
        data_(data),
        length_(length),
        storage_(storage) {}

  // Finishes a Create/CreateReserve: `block` is a kStorageHeaderBytes+capacity co-allocated
  // slab block, or nullptr to take the heap-fallback path. Defined out of line so the
  // compile-time CreateReserveFor fast path stays small at call sites.
  static std::unique_ptr<IOBuf> FromStorageBlock(void* block, std::size_t capacity,
                                                 std::size_t headroom, std::size_t length,
                                                 bool zero);
  static SharedStorage* AllocateStorage(std::size_t capacity, bool zero);
  // Initializes the SharedStorage header of a co-allocated [header|bytes] block and counts
  // the allocation (`slab` = the block came from the GP/slab path, not a malloc fallback).
  static SharedStorage* InitCoAllocatedBlock(void* block, std::size_t bytes, bool zero,
                                             bool slab);
  static void DisposeCoAllocated(SharedStorage* storage);
  static void DisposeExternal(SharedStorage* storage);
  void ReleaseStorage();

  std::uint8_t* buffer_;
  std::size_t capacity_;
  std::uint8_t* data_;
  std::size_t length_;
  SharedStorage* storage_;  // nullptr => non-owning view
  std::unique_ptr<IOBuf> next_;
};

// Cursor for parsing data that may span chain elements. Protocol parsers Get<T>() headers and
// Advance() through the chain without caring about element boundaries (as long as any single
// Get does not straddle one — parsers coalesce records when that rule would break).
class DataPointer {
 public:
  explicit DataPointer(const IOBuf* buf) : buf_(buf) {}

  template <typename T>
  const T& Get() {
    const T& result = GetNoAdvance<T>();
    Advance(sizeof(T));
    return result;
  }

  template <typename T>
  const T& GetNoAdvance() const {
    Kassert(buf_ != nullptr, "DataPointer: past end");
    Kassert(offset_ + sizeof(T) <= buf_->Length(), "DataPointer: Get straddles chain element");
    return *reinterpret_cast<const T*>(buf_->Data() + offset_);
  }

  const std::uint8_t* Data() const {
    Kassert(buf_ != nullptr, "DataPointer: past end");
    return buf_->Data() + offset_;
  }

  void Advance(std::size_t amount) {
    while (amount > 0) {
      Kassert(buf_ != nullptr, "DataPointer: advance past end");
      std::size_t here = buf_->Length() - offset_;
      if (amount < here) {
        offset_ += amount;
        return;
      }
      amount -= here;
      buf_ = buf_->Next();
      offset_ = 0;
    }
  }

  std::size_t Remaining() const {
    std::size_t total = 0;
    const IOBuf* buf = buf_;
    std::size_t off = offset_;
    while (buf != nullptr) {
      total += buf->Length() - off;
      off = 0;
      buf = buf->Next();
    }
    return total;
  }

  // Chain-aware copy-out from the cursor position (does not advance).
  void CopyOut(void* dst, std::size_t len) const;

 private:
  const IOBuf* buf_;
  std::size_t offset_ = 0;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_IOBUF_IOBUF_H_
