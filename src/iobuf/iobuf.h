// IOBuf — ownership descriptor + view over a region of memory (paper §3.6).
//
// "An IOBuf is a descriptor which manages ownership of a region of memory as well as a view of
// a portion of that memory." Device drivers pass IOBufs up the stack synchronously; each
// protocol layer Advance()s past its header rather than copying; applications receive the same
// descriptor the DMA engine filled. Sends accept *chains* of IOBufs so headers and payload
// from different owners are scatter/gathered without copies.
//
// Layout of a single buffer:
//
//     buffer_                data_                   data_+length_      buffer_+capacity_
//        |--- headroom ---------|------ view ------------|----- tailroom -----|
//
// Chains are singly linked through owned `next_` pointers; typical chains are 1–4 elements
// (header + payload), so tail walks are O(1)-ish and kept simple.
//
// Ownership is reference-counted (folly/EbbRT style): owned storage lives behind a shared
// control block so Clone()/Split() produce additional zero-copy views of the same bytes.
// Clones therefore observe writes through any sibling view — the datapath treats received
// buffers as immutable once shared.
#ifndef EBBRT_SRC_IOBUF_IOBUF_H_
#define EBBRT_SRC_IOBUF_IOBUF_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <utility>

#include "src/platform/debug.h"

namespace ebbrt {

class IOBuf {
 public:
  // Free-function type invoked to release externally-owned storage.
  using FreeFn = void (*)(void* buffer, void* arg);

  // A buffer of `capacity` bytes with the view covering the whole capacity (EbbRT's
  // MakeUniqueIOBuf convention). When `zero` is set the storage is zero-filled.
  static std::unique_ptr<IOBuf> Create(std::size_t capacity, bool zero = false);

  // A buffer of `capacity` bytes with an *empty* view positioned `headroom` bytes in; callers
  // extend with Append()/Prepend(). Useful for building headers in front of payload.
  static std::unique_ptr<IOBuf> CreateReserve(std::size_t capacity, std::size_t headroom);

  // Copies [data, data+len) into a new owned buffer (with optional headroom).
  static std::unique_ptr<IOBuf> CopyBuffer(const void* data, std::size_t len,
                                           std::size_t headroom = 0);
  static std::unique_ptr<IOBuf> CopyBuffer(std::string_view sv, std::size_t headroom = 0) {
    return CopyBuffer(sv.data(), sv.size(), headroom);
  }

  // Wraps external memory without taking ownership. The caller guarantees the memory outlives
  // the IOBuf (e.g. static protocol constants, arena-backed stores).
  static std::unique_ptr<IOBuf> WrapBuffer(const void* data, std::size_t len);

  // Takes ownership of external memory; `free_fn(buffer, arg)` is called when the last view
  // of the storage is destroyed.
  static std::unique_ptr<IOBuf> TakeOwnership(void* buffer, std::size_t capacity,
                                              std::size_t length, FreeFn free_fn, void* arg);

  ~IOBuf();

  IOBuf(const IOBuf&) = delete;
  IOBuf& operator=(const IOBuf&) = delete;

  // --- View of this element ---------------------------------------------------------------
  const std::uint8_t* Data() const { return data_; }
  std::uint8_t* WritableData() { return data_; }
  std::size_t Length() const { return length_; }
  std::size_t Capacity() const { return capacity_; }
  const std::uint8_t* Buffer() const { return buffer_; }
  const std::uint8_t* Tail() const { return data_ + length_; }
  std::uint8_t* WritableTail() { return data_ + length_; }
  std::size_t Headroom() const { return static_cast<std::size_t>(data_ - buffer_); }
  std::size_t Tailroom() const {
    return static_cast<std::size_t>((buffer_ + capacity_) - Tail());
  }

  // True when other views (clones / splits) reference this element's storage.
  bool Shared() const;

  // Shrinks the view from the front (protocol layers step past their headers).
  void Advance(std::size_t amount) {
    Kassert(amount <= length_, "IOBuf::Advance past end");
    data_ += amount;
    length_ -= amount;
  }

  // Grows the view backwards into headroom (prepending a header into reserved space).
  void Retreat(std::size_t amount) {
    Kassert(amount <= Headroom(), "IOBuf::Retreat past start");
    data_ -= amount;
    length_ += amount;
  }

  // Grows the view forward into tailroom.
  void Append(std::size_t amount) {
    Kassert(amount <= Tailroom(), "IOBuf::Append past capacity");
    length_ += amount;
  }

  void TrimEnd(std::size_t amount) {
    Kassert(amount <= length_, "IOBuf::TrimEnd past start");
    length_ -= amount;
  }

  void TrimStart(std::size_t amount) { Advance(amount); }

  // Reinterprets the front of the view as a (packed) structure — Figure 2's
  // `buf->Get<EthernetHeader>()`.
  template <typename T>
  T& Get(std::size_t offset = 0) {
    Kassert(offset + sizeof(T) <= length_, "IOBuf::Get: view too short");
    return *reinterpret_cast<T*>(data_ + offset);
  }

  template <typename T>
  const T& Get(std::size_t offset = 0) const {
    Kassert(offset + sizeof(T) <= length_, "IOBuf::Get: view too short");
    return *reinterpret_cast<const T*>(data_ + offset);
  }

  // --- Chain operations ---------------------------------------------------------------------
  IOBuf* Next() { return next_.get(); }
  const IOBuf* Next() const { return next_.get(); }
  bool IsChained() const { return next_ != nullptr; }

  // Appends `chain` at the tail of this chain (scatter/gather send path).
  void AppendChain(std::unique_ptr<IOBuf> chain);

  // Detaches and returns everything after this element.
  std::unique_ptr<IOBuf> Pop() { return std::move(next_); }

  std::size_t CountChainElements() const;
  std::size_t ComputeChainDataLength() const;

  // Zero-copy clone: a new chain of views that share (and refcount) this chain's storage.
  // The cheap path everywhere a second reader needs the same bytes.
  std::unique_ptr<IOBuf> Clone() const;
  // Clones only this element (no chain walk), sharing its storage.
  std::unique_ptr<IOBuf> CloneOne() const;

  // Deep copy of the whole chain into a single new owned buffer — used where the bytes must
  // be detached from the producer's storage (e.g. the simulated fabric boundary).
  std::unique_ptr<IOBuf> DeepClone() const;

  // Splits the chain at byte offset `n`: this chain keeps [0, n), the returned chain holds
  // [n, end). An element straddling the boundary is shared between the two chains via
  // refcounted views — no bytes are copied.
  std::unique_ptr<IOBuf> Split(std::size_t n);

  // Flattens the whole chain into this element, reallocating if needed. Used sparingly (e.g.
  // reassembling an application record that crossed segment boundaries); the fast paths never
  // coalesce.
  void Coalesce();

  // Copies the first `len` bytes of the chain's data into `dst` (chain-aware memcpy-out).
  void CopyOut(void* dst, std::size_t len, std::size_t offset = 0) const;

  std::string_view AsStringView() const {
    return {reinterpret_cast<const char*>(data_), length_};
  }

 private:
  // Shared control block for owned storage. Non-owning views carry no block. The count is
  // atomic because clones of a received chain may be retained by another core (e.g. a
  // response queued on a different connection) and released there.
  struct SharedStorage {
    std::uint8_t* buffer;
    FreeFn free_fn;
    void* free_arg;
    std::atomic<std::size_t> refs{1};
  };

  IOBuf(std::uint8_t* buffer, std::size_t capacity, std::uint8_t* data, std::size_t length,
        SharedStorage* storage)
      : buffer_(buffer),
        capacity_(capacity),
        data_(data),
        length_(length),
        storage_(storage) {}

  static SharedStorage* MakeHeapStorage(std::uint8_t* buffer);
  void ReleaseStorage();
  void AdoptHeapStorage(std::uint8_t* storage, std::size_t total);

  std::uint8_t* buffer_;
  std::size_t capacity_;
  std::uint8_t* data_;
  std::size_t length_;
  SharedStorage* storage_;  // nullptr => non-owning view
  std::unique_ptr<IOBuf> next_;
};

// Cursor for parsing data that may span chain elements. Protocol parsers Get<T>() headers and
// Advance() through the chain without caring about element boundaries (as long as any single
// Get does not straddle one — parsers coalesce records when that rule would break).
class DataPointer {
 public:
  explicit DataPointer(const IOBuf* buf) : buf_(buf) {}

  template <typename T>
  const T& Get() {
    const T& result = GetNoAdvance<T>();
    Advance(sizeof(T));
    return result;
  }

  template <typename T>
  const T& GetNoAdvance() const {
    Kassert(buf_ != nullptr, "DataPointer: past end");
    Kassert(offset_ + sizeof(T) <= buf_->Length(), "DataPointer: Get straddles chain element");
    return *reinterpret_cast<const T*>(buf_->Data() + offset_);
  }

  const std::uint8_t* Data() const {
    Kassert(buf_ != nullptr, "DataPointer: past end");
    return buf_->Data() + offset_;
  }

  void Advance(std::size_t amount) {
    while (amount > 0) {
      Kassert(buf_ != nullptr, "DataPointer: advance past end");
      std::size_t here = buf_->Length() - offset_;
      if (amount < here) {
        offset_ += amount;
        return;
      }
      amount -= here;
      buf_ = buf_->Next();
      offset_ = 0;
    }
  }

  std::size_t Remaining() const {
    std::size_t total = 0;
    const IOBuf* buf = buf_;
    std::size_t off = offset_;
    while (buf != nullptr) {
      total += buf->Length() - off;
      off = 0;
      buf = buf->Next();
    }
    return total;
  }

  // Chain-aware copy-out from the cursor position (does not advance).
  void CopyOut(void* dst, std::size_t len) const;

 private:
  const IOBuf* buf_;
  std::size_t offset_ = 0;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_IOBUF_IOBUF_H_
