// IOBufQueue — per-connection accumulator for the zero-copy receive path.
//
// TCP hands the application one device-filled IOBuf chain per segment (§3.6). Record-oriented
// parsers (memcached binary protocol, HTTP) need a byte-stream view of those segments without
// giving up the zero-copy property for the common case. IOBufQueue accumulates arriving
// chains and lets a parser:
//
//   * peek at the first `n` bytes as a contiguous view (EnsureContiguous) — free when the
//     front element already holds them (the single-segment fast path), a single bounded
//     copy only when a record genuinely straddles segment boundaries;
//   * consume parsed bytes (TrimStart) or carve them off as an owned chain (Split) without
//     touching the rest of the stream.
//
// The coalesce counters make the zero-copy claim testable: a parser that feeds N one-segment
// records through the queue must observe coalesce_ops() == 0.
#ifndef EBBRT_SRC_IOBUF_IOBUF_QUEUE_H_
#define EBBRT_SRC_IOBUF_IOBUF_QUEUE_H_

#include <memory>

#include "src/iobuf/iobuf.h"

namespace ebbrt {

class IOBufQueue {
 public:
  IOBufQueue() = default;

  IOBufQueue(const IOBufQueue&) = delete;
  IOBufQueue& operator=(const IOBufQueue&) = delete;

  // Moves must reset the source: a defaulted move would leave it with a null head but stale
  // length_ and a dangling tail_, corrupting the first reuse.
  IOBufQueue(IOBufQueue&& other) noexcept
      : head_(std::move(other.head_)),
        tail_(other.tail_),
        length_(other.length_),
        coalesce_ops_(other.coalesce_ops_),
        coalesced_bytes_(other.coalesced_bytes_) {
    other.tail_ = nullptr;
    other.length_ = 0;
    other.coalesce_ops_ = 0;
    other.coalesced_bytes_ = 0;
  }
  IOBufQueue& operator=(IOBufQueue&& other) noexcept {
    head_ = std::move(other.head_);
    tail_ = other.tail_;
    length_ = other.length_;
    coalesce_ops_ = other.coalesce_ops_;
    coalesced_bytes_ = other.coalesced_bytes_;
    other.tail_ = nullptr;
    other.length_ = 0;
    other.coalesce_ops_ = 0;
    other.coalesced_bytes_ = 0;
    return *this;
  }

  // Appends a chain at the tail (ownership transferred). O(len of appended chain), not of
  // the queue: the tail element is cached.
  void Append(std::unique_ptr<IOBuf> buf);

  std::size_t ChainLength() const { return length_; }
  bool Empty() const { return length_ == 0; }

  // Front element's contiguous view length (bytes available without any copy).
  std::size_t FrontLength() const;

  // Returns a pointer to the first `n` bytes as contiguous memory, or nullptr when fewer
  // than `n` bytes are queued. Zero-copy when the front element already holds `n` bytes;
  // otherwise coalesces exactly the `n`-byte prefix (counted in coalesce_ops()/
  // coalesced_bytes()). The pointer is valid until the next mutating call.
  const std::uint8_t* EnsureContiguous(std::size_t n);

  // Copies the first `n` bytes into `dst` without disturbing the chain — for peeking
  // fixed-size record headers that may straddle elements, so parsers can learn a record's
  // length without forcing a coalesce. Returns false when fewer than `n` bytes are queued.
  bool Peek(void* dst, std::size_t n) const;

  // Drops the first `n` bytes (parsed-and-done path).
  void TrimStart(std::size_t n);

  // Removes and returns the first `n` bytes as an owned chain (zero-copy: an element
  // straddling the boundary is shared, not copied).
  std::unique_ptr<IOBuf> Split(std::size_t n);

  // Takes the whole queue as one chain (nullptr when empty).
  std::unique_ptr<IOBuf> Move();

  // Observability for the zero-copy invariant (asserted by tests and exported by parsers).
  std::size_t coalesce_ops() const { return coalesce_ops_; }
  std::size_t coalesced_bytes() const { return coalesced_bytes_; }

 private:
  void DropEmptyHead();

  std::unique_ptr<IOBuf> head_;
  IOBuf* tail_ = nullptr;  // last element of head_'s chain (nullptr iff head_ == nullptr)
  std::size_t length_ = 0;
  std::size_t coalesce_ops_ = 0;
  std::size_t coalesced_bytes_ = 0;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_IOBUF_IOBUF_QUEUE_H_
