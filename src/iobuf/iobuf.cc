#include "src/iobuf/iobuf.h"

#include <cstdlib>

namespace ebbrt {

namespace {
void FreeHeap(void* buffer, void* /*arg*/) { std::free(buffer); }
}  // namespace

std::unique_ptr<IOBuf> IOBuf::Create(std::size_t capacity, bool zero) {
  auto* storage = static_cast<std::uint8_t*>(zero ? std::calloc(1, capacity ? capacity : 1)
                                                  : std::malloc(capacity ? capacity : 1));
  Kbugon(storage == nullptr, "IOBuf::Create: allocation of %zu bytes failed", capacity);
  return std::unique_ptr<IOBuf>(
      new IOBuf(storage, capacity, storage, capacity, FreeHeap, nullptr));
}

std::unique_ptr<IOBuf> IOBuf::CreateReserve(std::size_t capacity, std::size_t headroom) {
  Kassert(headroom <= capacity, "IOBuf::CreateReserve: headroom > capacity");
  auto* storage = static_cast<std::uint8_t*>(std::malloc(capacity ? capacity : 1));
  Kbugon(storage == nullptr, "IOBuf::CreateReserve: allocation of %zu bytes failed", capacity);
  return std::unique_ptr<IOBuf>(
      new IOBuf(storage, capacity, storage + headroom, 0, FreeHeap, nullptr));
}

std::unique_ptr<IOBuf> IOBuf::CopyBuffer(const void* data, std::size_t len,
                                         std::size_t headroom) {
  auto buf = CreateReserve(len + headroom, headroom);
  std::memcpy(buf->WritableTail(), data, len);
  buf->Append(len);
  return buf;
}

std::unique_ptr<IOBuf> IOBuf::WrapBuffer(const void* data, std::size_t len) {
  auto* bytes = static_cast<std::uint8_t*>(const_cast<void*>(data));
  return std::unique_ptr<IOBuf>(new IOBuf(bytes, len, bytes, len, nullptr, nullptr));
}

std::unique_ptr<IOBuf> IOBuf::TakeOwnership(void* buffer, std::size_t capacity,
                                            std::size_t length, FreeFn free_fn, void* arg) {
  auto* bytes = static_cast<std::uint8_t*>(buffer);
  return std::unique_ptr<IOBuf>(new IOBuf(bytes, capacity, bytes, length, free_fn, arg));
}

IOBuf::~IOBuf() {
  // Destroy the chain iteratively: deep recursion through unique_ptr would overflow the small
  // event stacks on long chains.
  std::unique_ptr<IOBuf> rest = std::move(next_);
  while (rest != nullptr) {
    std::unique_ptr<IOBuf> next = std::move(rest->next_);
    rest = std::move(next);
  }
  if (free_fn_ != nullptr) {
    free_fn_(buffer_, free_arg_);
  }
}

void IOBuf::AppendChain(std::unique_ptr<IOBuf> chain) {
  IOBuf* tail = this;
  while (tail->next_ != nullptr) {
    tail = tail->next_.get();
  }
  tail->next_ = std::move(chain);
}

std::size_t IOBuf::CountChainElements() const {
  std::size_t count = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    ++count;
  }
  return count;
}

std::size_t IOBuf::ComputeChainDataLength() const {
  std::size_t total = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    total += buf->Length();
  }
  return total;
}

void IOBuf::CoalesceChain() {
  if (next_ == nullptr) {
    return;
  }
  std::size_t total = ComputeChainDataLength();
  auto* storage = static_cast<std::uint8_t*>(std::malloc(total ? total : 1));
  Kbugon(storage == nullptr, "IOBuf::CoalesceChain: allocation of %zu bytes failed", total);
  std::size_t offset = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    std::memcpy(storage + offset, buf->Data(), buf->Length());
    offset += buf->Length();
  }
  // Release old storage and the rest of the chain, then adopt the flat buffer.
  next_.reset();
  if (free_fn_ != nullptr) {
    free_fn_(buffer_, free_arg_);
  }
  buffer_ = storage;
  capacity_ = total;
  data_ = storage;
  length_ = total;
  free_fn_ = FreeHeap;
  free_arg_ = nullptr;
}

void IOBuf::CopyOut(void* dst, std::size_t len, std::size_t offset) const {
  auto* out = static_cast<std::uint8_t*>(dst);
  const IOBuf* buf = this;
  // Skip to the element containing `offset`.
  while (buf != nullptr && offset >= buf->Length()) {
    offset -= buf->Length();
    buf = buf->Next();
  }
  while (len > 0) {
    Kassert(buf != nullptr, "IOBuf::CopyOut: chain too short");
    std::size_t here = buf->Length() - offset;
    std::size_t take = here < len ? here : len;
    std::memcpy(out, buf->Data() + offset, take);
    out += take;
    len -= take;
    offset = 0;
    buf = buf->Next();
  }
}

std::unique_ptr<IOBuf> IOBuf::Clone() const {
  std::size_t total = ComputeChainDataLength();
  auto copy = Create(total);
  CopyOut(copy->WritableData(), total);
  return copy;
}

void DataPointer::CopyOut(void* dst, std::size_t len) const {
  Kassert(buf_ != nullptr || len == 0, "DataPointer::CopyOut: past end");
  if (len == 0) {
    return;
  }
  buf_->CopyOut(dst, len, offset_);
}

}  // namespace ebbrt
