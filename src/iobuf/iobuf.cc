#include "src/iobuf/iobuf.h"

#include <cstdlib>
#include <new>

namespace ebbrt {

namespace {

// Counted std::malloc fallback — the benches' "mallocs per op" metric is exactly this
// counter's growth.
void* HeapFallback(std::size_t size) {
  mem::stats().heap_fallback_allocs.fetch_add(1, std::memory_order_relaxed);
  void* block = std::malloc(size);
  Kbugon(block == nullptr, "IOBuf: allocation of %zu bytes failed", size);
  return block;
}

// Runtime-size twin of IOBuf::TryGpBlockFor<N>.
void* TryGpBlock(std::size_t size) {
  if (!HaveContext()) {
    return nullptr;
  }
  auto* root = CurrentRuntime().TryGetSubsystem<GeneralPurposeAllocatorRoot>(
      Subsystem::kGeneralPurposeAllocator);
  if (root == nullptr) {
    return nullptr;
  }
  return GeneralPurposeAllocator::Instance()->Alloc(size);
}

// Allocates a raw block for IOBuf use: the current machine's GP allocator when a context is
// installed (slab fast path), std::malloc otherwise.
void* AllocBlock(std::size_t size, bool* slab_backed) {
  void* block = TryGpBlock(size);
  if (slab_backed != nullptr) {
    *slab_backed = block != nullptr;
  }
  return block != nullptr ? block : HeapFallback(size);
}

// Routes a block back to whichever machine arena owns it — from any context — or to the
// heap when no arena does. This is what lets a buffer allocated on one core be released
// wherever its last view dies (another core, a world action, teardown).
void FreeBlock(void* p) {
  GeneralPurposeAllocatorRoot* owner = mem::FindOwningRoot(p);
  if (owner == nullptr) {
    std::free(p);
    return;
  }
  if (HaveContext() && owner->runtime() == &CurrentRuntime()) {
    // Same machine: per-core fast path via the cached Ebb representative.
    GeneralPurposeAllocator::Instance()->Free(p);
    return;
  }
  owner->FreeAnywhere(p);
}

}  // namespace

void* IOBuf::operator new(std::size_t size) {
  // The descriptor's compile-time-size slab fast path. `size` can only differ from
  // sizeof(IOBuf) for a (hypothetical) subclass — route that to the generic block path.
  if (size == sizeof(IOBuf)) {
    void* p = TryGpBlockFor<sizeof(IOBuf)>();
    return p != nullptr ? p : HeapFallback(size);
  }
  return AllocBlock(size, nullptr);
}

void IOBuf::operator delete(void* p) { FreeBlock(p); }

// Dispose for the co-allocated [SharedStorage][bytes] layout: one block, one free.
void IOBuf::DisposeCoAllocated(SharedStorage* storage) { FreeBlock(storage); }

// Dispose for TakeOwnership storage: run the user's free callback, then release the
// (separately-allocated) control block.
void IOBuf::DisposeExternal(SharedStorage* storage) {
  if (storage->free_fn != nullptr) {
    storage->free_fn(storage->buffer, storage->free_arg);
  }
  FreeBlock(storage);
}

IOBuf::SharedStorage* IOBuf::InitCoAllocatedBlock(void* block, std::size_t bytes, bool zero,
                                                  bool slab) {
  auto* storage = new (block) SharedStorage;
  storage->buffer = static_cast<std::uint8_t*>(block) + kStorageHeaderBytes;
  storage->dispose = &DisposeCoAllocated;
  storage->free_fn = nullptr;
  storage->free_arg = nullptr;
  storage->origin_core = 0;
  if (zero) {
    std::memset(storage->buffer, 0, bytes);
  }
  auto& stats = mem::stats();
  stats.iobuf_allocs.fetch_add(1, std::memory_order_relaxed);
  if (slab) {
    stats.iobuf_slab_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return storage;
}

IOBuf::SharedStorage* IOBuf::AllocateStorage(std::size_t capacity, bool zero) {
  std::size_t bytes = capacity != 0 ? capacity : 1;
  bool slab = false;
  void* block = AllocBlock(kStorageHeaderBytes + bytes, &slab);
  return InitCoAllocatedBlock(block, bytes, zero, slab);
}

std::unique_ptr<IOBuf> IOBuf::FromStorageBlock(void* block, std::size_t capacity,
                                               std::size_t headroom, std::size_t length,
                                               bool zero) {
  Kassert(headroom + length <= (capacity != 0 ? capacity : 1),
          "IOBuf::FromStorageBlock: view exceeds capacity");
  SharedStorage* storage =
      block != nullptr
          // The caller (compile-time AllocFor path) already took the block from the slab.
          ? InitCoAllocatedBlock(block, capacity != 0 ? capacity : 1, zero, /*slab=*/true)
          : AllocateStorage(capacity, zero);
  return std::unique_ptr<IOBuf>(
      new IOBuf(storage->buffer, capacity, storage->buffer + headroom, length, storage));
}

void IOBuf::ReleaseStorage() {
  if (storage_ == nullptr) {
    return;
  }
  if (storage_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    storage_->dispose(storage_);
  }
  storage_ = nullptr;
}

bool IOBuf::Shared() const {
  return storage_ != nullptr && storage_->refs.load(std::memory_order_acquire) > 1;
}

std::size_t IOBuf::StorageRefCount() const {
  return storage_ != nullptr ? storage_->refs.load(std::memory_order_acquire) : 0;
}

bool IOBuf::StorageEmbedded() const {
  return storage_ != nullptr &&
         storage_->buffer == reinterpret_cast<const std::uint8_t*>(storage_) +
                                 kStorageHeaderBytes;
}

std::unique_ptr<IOBuf> IOBuf::Create(std::size_t capacity, bool zero) {
  return FromStorageBlock(nullptr, capacity, /*headroom=*/0, /*length=*/capacity, zero);
}

std::unique_ptr<IOBuf> IOBuf::CreateReserve(std::size_t capacity, std::size_t headroom) {
  Kassert(headroom <= capacity, "IOBuf::CreateReserve: headroom > capacity");
  return FromStorageBlock(nullptr, capacity, headroom, /*length=*/0, /*zero=*/false);
}

std::unique_ptr<IOBuf> IOBuf::CopyBuffer(const void* data, std::size_t len,
                                         std::size_t headroom) {
  auto buf = CreateReserve(len + headroom, headroom);
  std::memcpy(buf->WritableTail(), data, len);
  buf->Append(len);
  return buf;
}

std::unique_ptr<IOBuf> IOBuf::WrapBuffer(const void* data, std::size_t len) {
  auto* bytes = static_cast<std::uint8_t*>(const_cast<void*>(data));
  return std::unique_ptr<IOBuf>(new IOBuf(bytes, len, bytes, len, nullptr));
}

std::unique_ptr<IOBuf> IOBuf::TakeOwnership(void* buffer, std::size_t capacity,
                                            std::size_t length, FreeFn free_fn, void* arg) {
  auto* bytes = static_cast<std::uint8_t*>(buffer);
  void* block = AllocBlock(sizeof(SharedStorage), nullptr);
  auto* storage = new (block) SharedStorage;
  storage->buffer = bytes;
  storage->dispose = &DisposeExternal;
  storage->free_fn = free_fn;
  storage->free_arg = arg;
  storage->origin_core = 0;
  return std::unique_ptr<IOBuf>(new IOBuf(bytes, capacity, bytes, length, storage));
}

IOBuf::~IOBuf() {
  // Destroy the chain iteratively: deep recursion through unique_ptr would overflow the small
  // event stacks on long chains.
  std::unique_ptr<IOBuf> rest = std::move(next_);
  while (rest != nullptr) {
    std::unique_ptr<IOBuf> next = std::move(rest->next_);
    rest = std::move(next);
  }
  ReleaseStorage();
}

void IOBuf::AppendChain(std::unique_ptr<IOBuf> chain) {
  IOBuf* tail = this;
  while (tail->next_ != nullptr) {
    tail = tail->next_.get();
  }
  tail->next_ = std::move(chain);
}

std::unique_ptr<IOBuf> IOBuf::JoinChains(std::vector<std::unique_ptr<IOBuf>> parts) {
  std::unique_ptr<IOBuf> head;
  IOBuf* tail = nullptr;
  for (auto& part : parts) {
    if (part == nullptr) {
      continue;
    }
    IOBuf* part_tail = part.get();
    while (part_tail->next_ != nullptr) {
      part_tail = part_tail->next_.get();
    }
    if (head == nullptr) {
      head = std::move(part);
    } else {
      tail->next_ = std::move(part);
    }
    tail = part_tail;
  }
  return head;
}

std::size_t IOBuf::CountChainElements() const {
  std::size_t count = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    ++count;
  }
  return count;
}

std::size_t IOBuf::ComputeChainDataLength() const {
  std::size_t total = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    total += buf->Length();
  }
  return total;
}

std::unique_ptr<IOBuf> IOBuf::CloneOne() const {
  if (storage_ != nullptr) {
    storage_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  return std::unique_ptr<IOBuf>(new IOBuf(buffer_, capacity_, data_, length_, storage_));
}

std::unique_ptr<IOBuf> IOBuf::Clone() const {
  std::unique_ptr<IOBuf> head = CloneOne();
  IOBuf* tail = head.get();
  for (const IOBuf* buf = Next(); buf != nullptr; buf = buf->Next()) {
    tail->next_ = buf->CloneOne();
    tail = tail->next_.get();
  }
  return head;
}

std::unique_ptr<IOBuf> IOBuf::DeepClone() const {
  std::size_t total = ComputeChainDataLength();
  auto copy = Create(total);
  CopyOut(copy->WritableData(), total);
  return copy;
}

std::unique_ptr<IOBuf> IOBuf::Split(std::size_t n) {
  Kassert(n > 0, "IOBuf::Split: empty head split");
  IOBuf* buf = this;
  for (;;) {
    if (n < buf->length_) {
      // The boundary falls inside `buf`: share its storage between the two chains.
      std::unique_ptr<IOBuf> rest = buf->CloneOne();
      rest->Advance(n);
      rest->next_ = std::move(buf->next_);
      buf->TrimEnd(buf->length_ - n);
      return rest;
    }
    n -= buf->length_;
    if (n == 0 || buf->next_ == nullptr) {
      Kassert(n == 0, "IOBuf::Split: offset exceeds chain length");
      return std::move(buf->next_);
    }
    buf = buf->next_.get();
  }
}

void IOBuf::Coalesce() {
  if (next_ == nullptr) {
    return;
  }
  std::size_t total = ComputeChainDataLength();
  SharedStorage* storage = AllocateStorage(total, /*zero=*/false);
  std::size_t offset = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    std::memcpy(storage->buffer + offset, buf->Data(), buf->Length());
    offset += buf->Length();
  }
  // Release old storage and the rest of the chain, then adopt the flat buffer.
  next_.reset();
  ReleaseStorage();
  buffer_ = storage->buffer;
  capacity_ = total;
  data_ = storage->buffer;
  length_ = total;
  storage_ = storage;
}

void IOBuf::CopyOut(void* dst, std::size_t len, std::size_t offset) const {
  auto* out = static_cast<std::uint8_t*>(dst);
  const IOBuf* buf = this;
  // Skip to the element containing `offset`.
  while (buf != nullptr && offset >= buf->Length()) {
    offset -= buf->Length();
    buf = buf->Next();
  }
  while (len > 0) {
    Kassert(buf != nullptr, "IOBuf::CopyOut: chain too short");
    std::size_t here = buf->Length() - offset;
    std::size_t take = here < len ? here : len;
    std::memcpy(out, buf->Data() + offset, take);
    out += take;
    len -= take;
    offset = 0;
    buf = buf->Next();
  }
}

void DataPointer::CopyOut(void* dst, std::size_t len) const {
  Kassert(buf_ != nullptr || len == 0, "DataPointer::CopyOut: past end");
  if (len == 0) {
    return;
  }
  buf_->CopyOut(dst, len, offset_);
}

}  // namespace ebbrt
