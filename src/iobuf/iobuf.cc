#include "src/iobuf/iobuf.h"

#include <cstdlib>

namespace ebbrt {

namespace {
void FreeHeap(void* buffer, void* /*arg*/) { std::free(buffer); }
}  // namespace

IOBuf::SharedStorage* IOBuf::MakeHeapStorage(std::uint8_t* buffer) {
  auto* storage = new SharedStorage;
  storage->buffer = buffer;
  storage->free_fn = FreeHeap;
  storage->free_arg = nullptr;
  return storage;
}

void IOBuf::ReleaseStorage() {
  if (storage_ == nullptr) {
    return;
  }
  if (storage_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (storage_->free_fn != nullptr) {
      storage_->free_fn(storage_->buffer, storage_->free_arg);
    }
    delete storage_;
  }
  storage_ = nullptr;
}

bool IOBuf::Shared() const {
  return storage_ != nullptr && storage_->refs.load(std::memory_order_acquire) > 1;
}

std::unique_ptr<IOBuf> IOBuf::Create(std::size_t capacity, bool zero) {
  auto* storage = static_cast<std::uint8_t*>(zero ? std::calloc(1, capacity ? capacity : 1)
                                                  : std::malloc(capacity ? capacity : 1));
  Kbugon(storage == nullptr, "IOBuf::Create: allocation of %zu bytes failed", capacity);
  return std::unique_ptr<IOBuf>(
      new IOBuf(storage, capacity, storage, capacity, MakeHeapStorage(storage)));
}

std::unique_ptr<IOBuf> IOBuf::CreateReserve(std::size_t capacity, std::size_t headroom) {
  Kassert(headroom <= capacity, "IOBuf::CreateReserve: headroom > capacity");
  auto* storage = static_cast<std::uint8_t*>(std::malloc(capacity ? capacity : 1));
  Kbugon(storage == nullptr, "IOBuf::CreateReserve: allocation of %zu bytes failed", capacity);
  return std::unique_ptr<IOBuf>(
      new IOBuf(storage, capacity, storage + headroom, 0, MakeHeapStorage(storage)));
}

std::unique_ptr<IOBuf> IOBuf::CopyBuffer(const void* data, std::size_t len,
                                         std::size_t headroom) {
  auto buf = CreateReserve(len + headroom, headroom);
  std::memcpy(buf->WritableTail(), data, len);
  buf->Append(len);
  return buf;
}

std::unique_ptr<IOBuf> IOBuf::WrapBuffer(const void* data, std::size_t len) {
  auto* bytes = static_cast<std::uint8_t*>(const_cast<void*>(data));
  return std::unique_ptr<IOBuf>(new IOBuf(bytes, len, bytes, len, nullptr));
}

std::unique_ptr<IOBuf> IOBuf::TakeOwnership(void* buffer, std::size_t capacity,
                                            std::size_t length, FreeFn free_fn, void* arg) {
  auto* bytes = static_cast<std::uint8_t*>(buffer);
  auto* storage = new SharedStorage;
  storage->buffer = bytes;
  storage->free_fn = free_fn;
  storage->free_arg = arg;
  return std::unique_ptr<IOBuf>(new IOBuf(bytes, capacity, bytes, length, storage));
}

IOBuf::~IOBuf() {
  // Destroy the chain iteratively: deep recursion through unique_ptr would overflow the small
  // event stacks on long chains.
  std::unique_ptr<IOBuf> rest = std::move(next_);
  while (rest != nullptr) {
    std::unique_ptr<IOBuf> next = std::move(rest->next_);
    rest = std::move(next);
  }
  ReleaseStorage();
}

void IOBuf::AppendChain(std::unique_ptr<IOBuf> chain) {
  IOBuf* tail = this;
  while (tail->next_ != nullptr) {
    tail = tail->next_.get();
  }
  tail->next_ = std::move(chain);
}

std::size_t IOBuf::CountChainElements() const {
  std::size_t count = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    ++count;
  }
  return count;
}

std::size_t IOBuf::ComputeChainDataLength() const {
  std::size_t total = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    total += buf->Length();
  }
  return total;
}

std::unique_ptr<IOBuf> IOBuf::CloneOne() const {
  if (storage_ != nullptr) {
    storage_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  return std::unique_ptr<IOBuf>(new IOBuf(buffer_, capacity_, data_, length_, storage_));
}

std::unique_ptr<IOBuf> IOBuf::Clone() const {
  std::unique_ptr<IOBuf> head = CloneOne();
  IOBuf* tail = head.get();
  for (const IOBuf* buf = Next(); buf != nullptr; buf = buf->Next()) {
    tail->next_ = buf->CloneOne();
    tail = tail->next_.get();
  }
  return head;
}

std::unique_ptr<IOBuf> IOBuf::DeepClone() const {
  std::size_t total = ComputeChainDataLength();
  auto copy = Create(total);
  CopyOut(copy->WritableData(), total);
  return copy;
}

std::unique_ptr<IOBuf> IOBuf::Split(std::size_t n) {
  Kassert(n > 0, "IOBuf::Split: empty head split");
  IOBuf* buf = this;
  for (;;) {
    if (n < buf->length_) {
      // The boundary falls inside `buf`: share its storage between the two chains.
      std::unique_ptr<IOBuf> rest = buf->CloneOne();
      rest->Advance(n);
      rest->next_ = std::move(buf->next_);
      buf->TrimEnd(buf->length_ - n);
      return rest;
    }
    n -= buf->length_;
    if (n == 0 || buf->next_ == nullptr) {
      Kassert(n == 0, "IOBuf::Split: offset exceeds chain length");
      return std::move(buf->next_);
    }
    buf = buf->next_.get();
  }
}

void IOBuf::AdoptHeapStorage(std::uint8_t* storage, std::size_t total) {
  next_.reset();
  ReleaseStorage();
  buffer_ = storage;
  capacity_ = total;
  data_ = storage;
  length_ = total;
  storage_ = MakeHeapStorage(storage);
}

void IOBuf::Coalesce() {
  if (next_ == nullptr) {
    return;
  }
  std::size_t total = ComputeChainDataLength();
  auto* storage = static_cast<std::uint8_t*>(std::malloc(total ? total : 1));
  Kbugon(storage == nullptr, "IOBuf::Coalesce: allocation of %zu bytes failed", total);
  std::size_t offset = 0;
  for (const IOBuf* buf = this; buf != nullptr; buf = buf->Next()) {
    std::memcpy(storage + offset, buf->Data(), buf->Length());
    offset += buf->Length();
  }
  // Release old storage and the rest of the chain, then adopt the flat buffer.
  AdoptHeapStorage(storage, total);
}

void IOBuf::CopyOut(void* dst, std::size_t len, std::size_t offset) const {
  auto* out = static_cast<std::uint8_t*>(dst);
  const IOBuf* buf = this;
  // Skip to the element containing `offset`.
  while (buf != nullptr && offset >= buf->Length()) {
    offset -= buf->Length();
    buf = buf->Next();
  }
  while (len > 0) {
    Kassert(buf != nullptr, "IOBuf::CopyOut: chain too short");
    std::size_t here = buf->Length() - offset;
    std::size_t take = here < len ? here : len;
    std::memcpy(out, buf->Data() + offset, take);
    out += take;
    len -= take;
    offset = 0;
    buf = buf->Next();
  }
}

void DataPointer::CopyOut(void* dst, std::size_t len) const {
  Kassert(buf_ != nullptr || len == 0, "DataPointer::CopyOut: past end");
  if (len == 0) {
    return;
  }
  buf_->CopyOut(dst, len, offset_);
}

}  // namespace ebbrt
