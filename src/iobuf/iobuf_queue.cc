#include "src/iobuf/iobuf_queue.h"

namespace ebbrt {

void IOBufQueue::Append(std::unique_ptr<IOBuf> buf) {
  if (buf == nullptr) {
    return;
  }
  length_ += buf->ComputeChainDataLength();
  IOBuf* new_tail = buf.get();
  while (new_tail->Next() != nullptr) {
    new_tail = new_tail->Next();
  }
  if (head_ == nullptr) {
    head_ = std::move(buf);
  } else {
    tail_->AppendChain(std::move(buf));  // tail_ has no next: O(1)
  }
  tail_ = new_tail;
}

void IOBufQueue::DropEmptyHead() {
  while (head_ != nullptr && head_->Length() == 0) {
    head_ = head_->Pop();
  }
  if (head_ == nullptr) {
    tail_ = nullptr;
  }
}

std::size_t IOBufQueue::FrontLength() const {
  for (const IOBuf* buf = head_.get(); buf != nullptr; buf = buf->Next()) {
    if (buf->Length() != 0) {
      return buf->Length();
    }
  }
  return 0;
}

const std::uint8_t* IOBufQueue::EnsureContiguous(std::size_t n) {
  if (length_ < n) {
    return nullptr;
  }
  DropEmptyHead();
  if (n == 0) {
    return head_ != nullptr ? head_->Data() : nullptr;
  }
  if (head_->Length() >= n) {
    return head_->Data();  // single-segment fast path: no copy
  }
  // Reassemble exactly [0, n): detach the remainder zero-copy (Split shares the straddling
  // element rather than copying it), flatten the n-byte prefix, re-attach. Copies exactly n
  // bytes — an element the range merely reaches into contributes only its needed prefix.
  std::unique_ptr<IOBuf> rest = head_->Split(n);
  head_->Coalesce();
  if (rest != nullptr) {
    head_->AppendChain(std::move(rest));
  }
  IOBuf* tail = head_.get();
  while (tail->Next() != nullptr) {
    tail = tail->Next();
  }
  tail_ = tail;
  ++coalesce_ops_;
  coalesced_bytes_ += n;
  return head_->Data();
}

bool IOBufQueue::Peek(void* dst, std::size_t n) const {
  if (length_ < n) {
    return false;
  }
  if (n > 0) {
    head_->CopyOut(dst, n);
  }
  return true;
}

void IOBufQueue::TrimStart(std::size_t n) {
  Kassert(n <= length_, "IOBufQueue::TrimStart past end");
  length_ -= n;
  while (n > 0) {
    Kassert(head_ != nullptr, "IOBufQueue::TrimStart: chain shorter than length_");
    std::size_t here = head_->Length();
    if (here > n) {
      head_->Advance(n);
      return;
    }
    n -= here;
    head_ = head_->Pop();
  }
  DropEmptyHead();
}

std::unique_ptr<IOBuf> IOBufQueue::Split(std::size_t n) {
  Kassert(n <= length_, "IOBufQueue::Split past end");
  if (n == 0) {
    return nullptr;
  }
  DropEmptyHead();
  std::unique_ptr<IOBuf> rest = head_->Split(n);
  std::unique_ptr<IOBuf> result = std::move(head_);
  head_ = std::move(rest);
  length_ -= n;
  if (head_ == nullptr) {
    tail_ = nullptr;
  } else {
    // The split may have replaced the tail element with a shared view; re-resolve.
    IOBuf* tail = head_.get();
    while (tail->Next() != nullptr) {
      tail = tail->Next();
    }
    tail_ = tail;
  }
  return result;
}

std::unique_ptr<IOBuf> IOBufQueue::Move() {
  tail_ = nullptr;
  length_ = 0;
  return std::move(head_);
}

}  // namespace ebbrt
