// Runtime — the per-machine spine of an EbbRT instance.
//
// The paper deploys one library OS per VM plus hosted library instances inside Linux
// processes. Our reproduction runs several such instances inside one address space (so the
// simulated testbed can wire them together), which means every "per-machine singleton" of the
// original — Ebb roots, the boot allocator, the network stack — hangs off a Runtime object
// instead of being a process-global. A Runtime owns:
//
//   * its kind (Native or Hosted — Hosted runtimes translate EbbIds through per-core hash
//     maps, reproducing the paper's userspace translation cost),
//   * the global core slots assigned to it,
//   * the root registry: EbbId -> root object used by representative miss handlers,
//   * typed subsystem slots for the default Ebbs (event manager, allocators, network stack),
//     installed during bring-up by each subsystem.
#ifndef EBBRT_SRC_CORE_RUNTIME_H_
#define EBBRT_SRC_CORE_RUNTIME_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/platform/context.h"
#include "src/platform/debug.h"

namespace ebbrt {

enum class RuntimeKind : std::uint8_t {
  kNative,  // library OS instance: flat per-core Ebb translation tables
  kHosted,  // userspace library instance: per-core hash-table translation
};

// Typed slots for boot-time subsystems. Subsystems register themselves at bring-up;
// representatives fetch them from the current runtime without a registry lookup.
enum class Subsystem : std::size_t {
  kEventManager = 0,
  kTimer,
  kPageAllocator,
  kSlabRoot,
  kGeneralPurposeAllocator,
  kVMemAllocator,
  kRcuManager,
  kNic,
  kBufferPool,
  kNetworkManager,
  kMessenger,
  kGlobalIdMap,
  kRpcDemux,  // per-machine RPC service demultiplexer (dist::rpc)
  kObservability,  // per-machine telemetry plane root (obs::ObsRoot)
  kMachine,  // simulated machine this runtime is attached to (if any)
  kNumSubsystems,
};

class Runtime {
 public:
  explicit Runtime(RuntimeKind kind, std::string name = "machine");
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  RuntimeKind kind() const { return kind_; }
  bool hosted() const { return kind_ == RuntimeKind::kHosted; }
  const std::string& name() const { return name_; }
  std::size_t id() const { return id_; }

  // --- Cores -------------------------------------------------------------
  // Claims `n` global core slots for this machine. Must be called once before any event
  // execution. Returns the first global slot.
  std::size_t AddCores(std::size_t n);
  std::size_t num_cores() const { return cores_.size(); }
  std::size_t global_core(std::size_t machine_core) const {
    Kassert(machine_core < cores_.size(), "global_core: bad index");
    return cores_[machine_core];
  }
  const std::vector<std::size_t>& cores() const { return cores_; }

  // --- Root registry -----------------------------------------------------
  // Returns the root object for `id`, constructing it with `factory` under the registry lock
  // if absent. Roots are type-erased; MulticoreEbb supplies the typed wrapper.
  template <typename Factory>
  void* GetOrCreateRoot(EbbId id, Factory&& factory) {
    std::lock_guard<std::mutex> lock(roots_mu_);
    auto it = roots_.find(id);
    if (it != roots_.end()) {
      return it->second.ptr;
    }
    RootEntry entry;
    entry.ptr = factory();
    entry.deleter = [](void*) {};  // roots are owned by their Ebb type by default
    roots_.emplace(id, entry);
    return roots_.find(id)->second.ptr;
  }

  void* FindRoot(EbbId id) {
    std::lock_guard<std::mutex> lock(roots_mu_);
    auto it = roots_.find(id);
    return it == roots_.end() ? nullptr : it->second.ptr;
  }

  // Installs an externally-owned root (used when a root must outlive registry erasure rules).
  void InstallRoot(EbbId id, void* root);
  void EraseRoot(EbbId id);

  // Adopts ownership of a subsystem object so it dies with this machine (in reverse adoption
  // order — installers adopt foundations first). Benches build and tear down many short-lived
  // machines; without this, per-machine arenas and allocator roots would accumulate.
  void Adopt(std::shared_ptr<void> obj) { adopted_.push_back(std::move(obj)); }

  // --- Hosted translation cache -------------------------------------------
  // Hosted runtimes cache representatives in a per-core hash map (the paper's Linux userspace
  // cannot use per-core virtual memory regions). Returns nullptr on miss.
  void* HostedCacheLookup(std::size_t machine_core, EbbId id);
  void HostedCacheInsert(std::size_t machine_core, EbbId id, void* rep);

  // Caches `rep` for (current core, id): native -> flat table, hosted -> hash map.
  static void CacheRep(EbbId id, void* rep);

  // --- Subsystem slots ----------------------------------------------------
  template <typename T>
  void SetSubsystem(Subsystem which, T* ptr) {
    subsystems_[static_cast<std::size_t>(which)] = ptr;
  }

  template <typename T>
  T& GetSubsystem(Subsystem which) const {
    void* p = subsystems_[static_cast<std::size_t>(which)];
    Kassert(p != nullptr, "GetSubsystem: subsystem not installed");
    return *static_cast<T*>(p);
  }

  template <typename T>
  T* TryGetSubsystem(Subsystem which) const {
    return static_cast<T*>(subsystems_[static_cast<std::size_t>(which)]);
  }

  // Dynamic EbbId allocation for this machine (see EbbAllocator for the distributed story).
  EbbId AllocateLocalId();

 private:
  struct RootEntry {
    void* ptr;
    void (*deleter)(void*);
  };

  RuntimeKind kind_;
  std::string name_;
  std::size_t id_;
  std::vector<std::size_t> cores_;

  std::mutex roots_mu_;
  std::unordered_map<EbbId, RootEntry> roots_;

  std::mutex hosted_mu_;
  std::vector<std::unordered_map<EbbId, void*>> hosted_cache_;

  void* subsystems_[static_cast<std::size_t>(Subsystem::kNumSubsystems)] = {};

  std::mutex id_mu_;
  EbbId next_local_id_ = kFirstFreeId;

  std::vector<std::shared_ptr<void>> adopted_;  // destroyed in reverse order by ~Runtime
};

// Global core-slot bookkeeping (which runtime owns which global core).
namespace core_registry {
std::size_t Claim(Runtime* runtime, std::size_t n);
Runtime* Owner(std::size_t core);
void Release(Runtime* runtime);
}  // namespace core_registry

}  // namespace ebbrt

#endif  // EBBRT_SRC_CORE_RUNTIME_H_
