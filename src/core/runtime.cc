#include "src/core/runtime.h"

#include <array>
#include <atomic>

namespace ebbrt {

namespace core_registry {
namespace {
std::mutex mu;
std::array<Runtime*, kMaxCores> owners = {};
}  // namespace

std::size_t Claim(Runtime* runtime, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu);
  // Prefer a contiguous run of free slots (callers index cores as first+i). Slots are
  // recycled across Runtime lifetimes — benches construct many short-lived testbeds — and
  // Runtime's destructor wipes the per-core translation tables before release, so reuse
  // never observes stale representatives.
  for (std::size_t start = 0; start + n <= kMaxCores; ++start) {
    bool free_run = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (owners[start + i] != nullptr) {
        free_run = false;
        start += i;  // skip past the occupied slot
        break;
      }
    }
    if (free_run) {
      for (std::size_t i = 0; i < n; ++i) {
        owners[start + i] = runtime;
      }
      return start;
    }
  }
  Kabort("core_registry: no contiguous run of %zu free core slots", n);
}

Runtime* Owner(std::size_t core) {
  std::lock_guard<std::mutex> lock(mu);
  return core < kMaxCores ? owners[core] : nullptr;
}

void Release(Runtime* runtime) {
  std::lock_guard<std::mutex> lock(mu);
  for (auto& owner : owners) {
    if (owner == runtime) {
      owner = nullptr;
    }
  }
}
}  // namespace core_registry

namespace {
std::atomic<std::size_t> next_runtime_id{0};
}  // namespace

Runtime::Runtime(RuntimeKind kind, std::string name)
    : kind_(kind), name_(std::move(name)), id_(next_runtime_id.fetch_add(1)) {}

Runtime::~Runtime() {
  // Adopted subsystems die before the core slots are released, in reverse adoption order
  // (allocator roots before the arena they carve from).
  while (!adopted_.empty()) {
    adopted_.pop_back();
  }
  // Clear any representatives this machine's cores cached in the global translation tables so
  // a later test constructing a new Runtime does not see stale pointers.
  for (std::size_t core : cores_) {
    void** table = context_internal::CoreEbbTable(core);
    for (std::size_t i = 0; i < kMaxFastEbbIds; ++i) {
      table[i] = nullptr;
    }
  }
  core_registry::Release(this);
}

std::size_t Runtime::AddCores(std::size_t n) {
  Kassert(n > 0, "AddCores: zero cores");
  std::size_t first = core_registry::Claim(this, n);
  for (std::size_t i = 0; i < n; ++i) {
    cores_.push_back(first + i);
  }
  {
    std::lock_guard<std::mutex> lock(hosted_mu_);
    hosted_cache_.resize(cores_.size());
  }
  return first;
}

void Runtime::InstallRoot(EbbId id, void* root) {
  std::lock_guard<std::mutex> lock(roots_mu_);
  RootEntry entry;
  entry.ptr = root;
  entry.deleter = [](void*) {};
  roots_[id] = entry;
}

void Runtime::EraseRoot(EbbId id) {
  std::lock_guard<std::mutex> lock(roots_mu_);
  roots_.erase(id);
}

void* Runtime::HostedCacheLookup(std::size_t machine_core, EbbId id) {
  std::lock_guard<std::mutex> lock(hosted_mu_);
  Kassert(machine_core < hosted_cache_.size(), "HostedCacheLookup: bad core");
  auto& map = hosted_cache_[machine_core];
  auto it = map.find(id);
  return it == map.end() ? nullptr : it->second;
}

void Runtime::HostedCacheInsert(std::size_t machine_core, EbbId id, void* rep) {
  std::lock_guard<std::mutex> lock(hosted_mu_);
  Kassert(machine_core < hosted_cache_.size(), "HostedCacheInsert: bad core");
  hosted_cache_[machine_core][id] = rep;
}

void Runtime::CacheRep(EbbId id, void* rep) {
  Context& ctx = CurrentContext();
  Kassert(ctx.runtime != nullptr, "CacheRep: no context");
  if (ctx.runtime->hosted()) {
    ctx.runtime->HostedCacheInsert(ctx.machine_core, id, rep);
    return;
  }
  Kassert(id < kMaxFastEbbIds, "CacheRep: EbbId beyond fast-path table");
  context_internal::CoreEbbTable(ctx.core)[id] = rep;
}

EbbId Runtime::AllocateLocalId() {
  std::lock_guard<std::mutex> lock(id_mu_);
  EbbId id = next_local_id_++;
  Kbugon(id >= kMaxFastEbbIds, "Runtime %zu: EbbId space exhausted", id_);
  return id;
}

}  // namespace ebbrt
