// EbbRef<T> — the typed handle used to invoke an Elastic Building Block.
//
// The paper (§3.3): "An EbbId provides an offset into a virtual memory region backed with
// distinct per-core pages which holds a pointer to the per-core representative... When a
// function is called on an EbbRef, it checks the per-core representative pointer — in the
// common case where it is non-null, it is dereferenced and the call is made... If the pointer
// is null, then a type specific fault handler is invoked."
//
// Our per-core "virtual memory region" is a flat per-core array reached through one TLS load;
// the fast path is exactly one predictable conditional branch over a plain pointer call, and
// because EbbRef is templated by the representative type, calls dispatch statically and can be
// inlined by the compiler (Table 1 measures this). Hosted runtimes install an always-null
// table, so every invocation there faults into the type's handler, which consults a per-core
// hash map — reproducing the paper's ~19x hosted dispatch cost.
#ifndef EBBRT_SRC_CORE_EBB_REF_H_
#define EBBRT_SRC_CORE_EBB_REF_H_

#include "src/core/ebb_id.h"
#include "src/platform/context.h"

namespace ebbrt {

template <typename T>
class EbbRef {
 public:
  constexpr EbbRef() : id_(kNullEbbId) {}
  constexpr explicit EbbRef(EbbId id) : id_(id) {}

  T* operator->() const { return &GetRep(); }
  T& operator*() const { return GetRep(); }

  T& GetRep() const {
    void* rep = context_internal::local_ebb_table[id_];
    if (__builtin_expect(rep != nullptr, true)) {
      return *static_cast<T*>(rep);
    }
    // Miss path: the type's fault handler must return a representative for this core (and
    // will usually cache it via Runtime::CacheRep so future calls take the fast path).
    return T::HandleFault(id_);
  }

  constexpr EbbId id() const { return id_; }
  constexpr explicit operator bool() const { return id_ != kNullEbbId; }

  friend constexpr bool operator==(const EbbRef& a, const EbbRef& b) { return a.id_ == b.id_; }

 private:
  EbbId id_;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_CORE_EBB_REF_H_
