// EbbAllocator — allocates EbbIds.
//
// The paper gives every Ebb instance a system-wide unique 32-bit id. Within one machine ids
// come from a local range; ids that must be valid across machines (e.g. an Ebb whose reps span
// native and hosted instances) come from a block handed out by the hosted frontend's
// GlobalIdMap (see src/dist/). This Ebb is itself a SharedEbb with the static id
// kEbbManagerId, so it is invocable before any dynamic allocation exists.
#ifndef EBBRT_SRC_CORE_EBB_ALLOCATOR_H_
#define EBBRT_SRC_CORE_EBB_ALLOCATOR_H_

#include <mutex>
#include <utility>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/core/multicore_ebb.h"

namespace ebbrt {

class EbbAllocator : public SharedEbb<EbbAllocator> {
 public:
  EbbAllocator() = default;

  static EbbRef<EbbAllocator> Instance() { return EbbRef<EbbAllocator>(kEbbManagerId); }

  // Machine-local id (unique within this runtime; stable across cores).
  EbbId AllocateLocal();

  // Id from the machine's global block (valid across all machines of the application). The
  // block is installed by dist::GlobalIdMap during bring-up; falls back to local ids when the
  // machine runs standalone.
  EbbId Allocate();

  // Installs a [first, first+count) block of globally-unique ids for this machine. Returns
  // true when the block is installed. Re-installing the *same* block is an idempotent no-op
  // (bring-up may retry; already-handed-out ids are not re-issued), and a *different* block
  // is rejected (returns false) while the current one still has unallocated ids — a machine
  // must drain its block before adopting a new one. Once the block is exhausted a new
  // install is accepted, unless it overlaps the drained block (those ids were issued).
  bool SetGlobalBlock(EbbId first, EbbId count);

 private:
  std::mutex mu_;
  EbbId global_first_ = kNullEbbId;  // installed block (for idempotence checks)
  EbbId global_count_ = 0;
  EbbId global_next_ = kNullEbbId;
  EbbId global_end_ = kNullEbbId;
  // Every block ever installed, so a new install can be checked against ALL ranges whose
  // ids may be in the world — not just the latest. Installs are rare bring-up events; the
  // list stays tiny.
  std::vector<std::pair<EbbId, EbbId>> issued_;  // [first, end) per installed block
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_CORE_EBB_ALLOCATOR_H_
