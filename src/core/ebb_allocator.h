// EbbAllocator — allocates EbbIds.
//
// The paper gives every Ebb instance a system-wide unique 32-bit id. Within one machine ids
// come from a local range; ids that must be valid across machines (e.g. an Ebb whose reps span
// native and hosted instances) come from a block handed out by the hosted frontend's
// GlobalIdMap (see src/dist/). This Ebb is itself a SharedEbb with the static id
// kEbbManagerId, so it is invocable before any dynamic allocation exists.
#ifndef EBBRT_SRC_CORE_EBB_ALLOCATOR_H_
#define EBBRT_SRC_CORE_EBB_ALLOCATOR_H_

#include <mutex>

#include "src/core/ebb_id.h"
#include "src/core/multicore_ebb.h"

namespace ebbrt {

class EbbAllocator : public SharedEbb<EbbAllocator> {
 public:
  EbbAllocator() = default;

  static EbbRef<EbbAllocator> Instance() { return EbbRef<EbbAllocator>(kEbbManagerId); }

  // Machine-local id (unique within this runtime; stable across cores).
  EbbId AllocateLocal();

  // Id from the machine's global block (valid across all machines of the application). The
  // block is installed by dist::GlobalIdMap during bring-up; falls back to local ids when the
  // machine runs standalone.
  EbbId Allocate();

  // Installs a [first, first+count) block of globally-unique ids for this machine.
  void SetGlobalBlock(EbbId first, EbbId count);

 private:
  std::mutex mu_;
  EbbId global_next_ = kNullEbbId;
  EbbId global_end_ = kNullEbbId;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_CORE_EBB_ALLOCATOR_H_
