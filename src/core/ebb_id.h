// EbbId — the system-wide 32-bit name of an Elastic Building Block instance.
//
// Ids below kFirstFreeId are statically assigned to the runtime's core Ebbs so that boot-time
// components (memory allocator, event manager) can be invoked before any allocator exists —
// the same bootstrapping trick the native EbbRT kernel uses.
#ifndef EBBRT_SRC_CORE_EBB_ID_H_
#define EBBRT_SRC_CORE_EBB_ID_H_

#include <cstdint>

namespace ebbrt {

using EbbId = std::uint32_t;

inline constexpr EbbId kNullEbbId = 0;

// Static ids for the default runtime Ebbs (paper §3.1: "Every EbbRT library OS must be
// deployed with some implementation of these Ebbs").
enum StaticEbbIds : EbbId {
  kEbbManagerId = 1,          // EbbAllocator
  kEventManagerId = 2,        // per-core event loops
  kTimerId = 3,               // timeout dispatch
  kPageAllocatorId = 4,       // buddy allocator
  kSlabRootId = 5,            // slab allocator root directory
  kGeneralPurposeAllocatorId = 6,
  kVMemAllocatorId = 7,       // virtual-region allocator with app fault handlers
  kNetworkManagerId = 8,      // interfaces + protocol dispatch
  kMessengerId = 9,           // inter-machine typed messaging
  kGlobalIdMapId = 10,        // distributed naming
  kFileSystemId = 11,         // offloaded to the hosted instance
  kRcuManagerId = 12,         // epoch tracking
  kNodeAllocatorId = 13,      // machine bring-up bookkeeping
  kMetricRegistryId = 14,     // per-core observability plane (obs::MetricRegistry)
  kFirstStaticUserId = 32,    // first id tests/examples may claim statically
  kFirstFreeId = 0x100,       // first dynamically allocated id
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_CORE_EBB_ID_H_
