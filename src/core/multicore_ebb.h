// Representative-management base classes for common Ebb shapes.
//
// Paper §3.3: representatives are constructed on demand by a per-type fault handler; a root
// object (shared per machine) coordinates them. These CRTP bases implement the three shapes
// used throughout the runtime and applications:
//
//   * MulticoreEbb<Rep, Root>  — per-core representatives created from a per-machine root.
//   * MulticoreEbb<Rep, void>  — per-core representatives with no shared root.
//   * SharedEbb<T>             — one representative per machine, cached on every core.
//
// All fault handlers first consult the hosted per-core hash cache when running in a hosted
// runtime, then construct-and-cache. Construction is serialized through the runtime's root
// registry lock; per-core caching is non-atomic by the non-preemption argument.
#ifndef EBBRT_SRC_CORE_MULTICORE_EBB_H_
#define EBBRT_SRC_CORE_MULTICORE_EBB_H_

#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/core/ebb_id.h"
#include "src/core/ebb_ref.h"
#include "src/core/runtime.h"
#include "src/platform/context.h"

namespace ebbrt {

namespace ebb_internal {
// Looks up a hosted-cached rep for (current core, id); returns nullptr when absent or native.
inline void* HostedLookup(EbbId id) {
  Context& ctx = CurrentContext();
  if (!ctx.runtime->hosted()) {
    return nullptr;
  }
  return ctx.runtime->HostedCacheLookup(ctx.machine_core, id);
}
}  // namespace ebb_internal

// --- Per-core representatives sharing a per-machine Root -----------------------------------
//
// Rep must be constructible as Rep(Root&). Root must be default-constructible unless a root
// is installed explicitly with SetRoot() before first use.
template <typename Rep, typename Root = void>
class MulticoreEbb {
 public:
  static EbbRef<Rep> Create(Root* root, EbbId id) {
    CurrentRuntime().InstallRoot(id, root);
    return EbbRef<Rep>(id);
  }

  static Rep& HandleFault(EbbId id) {
    if (void* cached = ebb_internal::HostedLookup(id)) {
      return *static_cast<Rep*>(cached);
    }
    Runtime& rt = CurrentRuntime();
    void* root = rt.GetOrCreateRoot(id, [] { return static_cast<void*>(new Root()); });
    // The per-machine root tracks reps so cross-rep protocols (e.g. cache rebalance) can
    // reach them; here we only need construct-and-cache.
    auto* rep = new Rep(*static_cast<Root*>(root));
    Runtime::CacheRep(id, rep);
    return *rep;
  }
};

// --- Per-core representatives with no shared root -------------------------------------------
template <typename Rep>
class MulticoreEbb<Rep, void> {
 public:
  static Rep& HandleFault(EbbId id) {
    if (void* cached = ebb_internal::HostedLookup(id)) {
      return *static_cast<Rep*>(cached);
    }
    auto* rep = new Rep();
    Runtime::CacheRep(id, rep);
    return *rep;
  }
};

// --- One representative per machine ----------------------------------------------------------
//
// The single rep is created under the root-registry lock on first touch from any core and then
// cached into each core's translation table. T must be default-constructible, or installed
// explicitly via SetInstance().
template <typename T>
class SharedEbb {
 public:
  static EbbRef<T> Create(T* instance, EbbId id) {
    CurrentRuntime().InstallRoot(id, instance);
    return EbbRef<T>(id);
  }

  static T& HandleFault(EbbId id) {
    if (void* cached = ebb_internal::HostedLookup(id)) {
      return *static_cast<T*>(cached);
    }
    Runtime& rt = CurrentRuntime();
    void* instance = rt.GetOrCreateRoot(id, [] {
      if constexpr (std::is_default_constructible_v<T>) {
        return static_cast<void*>(new T());
      } else {
        Kabort("SharedEbb: no instance installed and T is not default-constructible");
        return static_cast<void*>(nullptr);
      }
    });
    Runtime::CacheRep(id, instance);
    return *static_cast<T*>(instance);
  }
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_CORE_MULTICORE_EBB_H_
