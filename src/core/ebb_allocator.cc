#include "src/core/ebb_allocator.h"

#include "src/core/runtime.h"

namespace ebbrt {

EbbId EbbAllocator::AllocateLocal() { return CurrentRuntime().AllocateLocalId(); }

EbbId EbbAllocator::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (global_next_ != kNullEbbId && global_next_ < global_end_) {
    return global_next_++;
  }
  return CurrentRuntime().AllocateLocalId();
}

bool EbbAllocator::SetGlobalBlock(EbbId first, EbbId count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (global_first_ != kNullEbbId) {
    if (first == global_first_ && count == global_count_) {
      return true;  // idempotent re-install: keep the allocation cursor where it is
    }
    if (global_next_ < global_end_) {
      return false;  // a different block while this one is live: rejected
    }
  }
  for (const auto& [issued_first, issued_end] : issued_) {
    if (first < issued_end && issued_first < first + count) {
      return false;  // overlaps a drained block: those ids were already handed out
    }
  }
  global_first_ = first;
  global_count_ = count;
  global_next_ = first;
  global_end_ = first + count;
  issued_.emplace_back(first, first + count);
  return true;
}

}  // namespace ebbrt
