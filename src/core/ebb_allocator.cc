#include "src/core/ebb_allocator.h"

#include "src/core/runtime.h"

namespace ebbrt {

EbbId EbbAllocator::AllocateLocal() { return CurrentRuntime().AllocateLocalId(); }

EbbId EbbAllocator::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (global_next_ != kNullEbbId && global_next_ < global_end_) {
    return global_next_++;
  }
  return CurrentRuntime().AllocateLocalId();
}

void EbbAllocator::SetGlobalBlock(EbbId first, EbbId count) {
  std::lock_guard<std::mutex> lock(mu_);
  global_next_ = first;
  global_end_ = first + count;
}

}  // namespace ebbrt
