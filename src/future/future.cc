#include "src/future/future.h"

namespace ebbrt {

Future<void> WhenAll(std::vector<Future<void>> futures) {
  struct Gather {
    Spinlock mu;
    std::size_t remaining;
    std::exception_ptr first_error;
    Promise<void> promise;
  };
  if (futures.empty()) {
    return MakeReadyFuture<void>();
  }
  auto gather = std::make_shared<Gather>();
  gather->remaining = futures.size();
  Future<void> result = gather->promise.GetFuture();
  for (auto& future : futures) {
    future.Then([gather](Future<void> f) {
      bool last = false;
      {
        std::lock_guard<Spinlock> lock(gather->mu);
        try {
          f.Get();
        } catch (...) {
          if (!gather->first_error) {
            gather->first_error = std::current_exception();
          }
        }
        last = (--gather->remaining == 0);
      }
      if (last) {
        if (gather->first_error) {
          gather->promise.SetException(gather->first_error);
        } else {
          gather->promise.SetValue();
        }
      }
    });
  }
  return result;
}

}  // namespace ebbrt
