#include "src/future/future.h"

namespace ebbrt {

// Same join discipline as the templated flavor (see future.h): lock-free atomic countdown,
// synchronous join for already-ready members, first-error-wins only after every member
// completes.
Future<void> WhenAll(std::vector<Future<void>> futures) {
  struct Gather {
    std::atomic<std::size_t> remaining;
    Spinlock error_mu;  // error path only
    std::exception_ptr first_error;
    Promise<void> promise;
  };
  if (futures.empty()) {
    return MakeReadyFuture<void>();
  }
  auto gather = std::make_shared<Gather>();
  gather->remaining.store(futures.size(), std::memory_order_relaxed);
  Future<void> result = gather->promise.GetFuture();
  for (auto& future : futures) {
    future.Then([gather](Future<void> f) {
      try {
        f.Get();
      } catch (...) {
        std::lock_guard<Spinlock> lock(gather->error_mu);
        if (!gather->first_error) {
          gather->first_error = std::current_exception();
        }
      }
      if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (gather->first_error) {
          gather->promise.SetException(gather->first_error);
        } else {
          gather->promise.SetValue();
        }
      }
    });
  }
  return result;
}

}  // namespace ebbrt
