// Monadic futures (paper §3.5).
//
// EbbRT's futures differ from std::future in exactly the ways the paper calls out:
//
//   * `Then(f)` chains a continuation and returns a new future for f's result (monadic bind);
//     when f itself returns a Future<U>, the result flattens to Future<U>.
//   * When the value is already available, `Then` runs the continuation *synchronously* — the
//     ARP-cache-hit path in Figure 2 never bounces through the event loop.
//   * Exceptions flow: `Get()` rethrows a stored exception; a continuation that does not catch
//     leaves the exception in the returned future, so only the *final* `Then` must handle
//     errors, mirroring synchronous try/catch structure.
//
// The state word + continuation install/fire handshake is the "sometimes subtle
// synchronization code" the paper centralizes here: SetValue and Then may race from different
// cores; a spinlock over tiny critical sections resolves it.
#ifndef EBBRT_SRC_FUTURE_FUTURE_H_
#define EBBRT_SRC_FUTURE_FUTURE_H_

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/platform/debug.h"
#include "src/platform/move_function.h"
#include "src/platform/spinlock.h"

namespace ebbrt {

template <typename T>
class Future;
template <typename T>
class Promise;

namespace future_internal {

template <typename T>
struct Flatten {
  using type = T;
};
template <typename T>
struct Flatten<Future<T>> {
  using type = typename Flatten<T>::type;
};

template <typename T>
using flatten_t = typename Flatten<T>::type;

template <typename T>
struct IsFuture : std::false_type {};
template <typename T>
struct IsFuture<Future<T>> : std::true_type {};

enum class State : std::uint8_t { kPending, kReady, kFailed };

template <typename T>
struct ValueStorage {
  alignas(T) unsigned char bytes[sizeof(T)];
  T* ptr() { return std::launder(reinterpret_cast<T*>(bytes)); }
  template <typename... Args>
  void Construct(Args&&... args) {
    new (bytes) T(std::forward<Args>(args)...);
  }
  void Destroy() { ptr()->~T(); }
};

template <>
struct ValueStorage<void> {
  void Construct() {}
  void Destroy() {}
};

template <typename T>
class SharedState {
 public:
  using Continuation = MoveFunction<void()>;

  ~SharedState() {
    if (state_ == State::kReady) {
      value_.Destroy();
    }
  }

  template <typename... Args>
  void SetValue(Args&&... args) {
    Continuation cont;
    {
      std::lock_guard<Spinlock> lock(mu_);
      Kassert(state_ == State::kPending, "Future: value set twice");
      value_.Construct(std::forward<Args>(args)...);
      state_ = State::kReady;
      cont = std::move(continuation_);
    }
    if (cont) {
      cont();
    }
  }

  void SetException(std::exception_ptr eptr) {
    Continuation cont;
    {
      std::lock_guard<Spinlock> lock(mu_);
      Kassert(state_ == State::kPending, "Future: value set twice");
      exception_ = std::move(eptr);
      state_ = State::kFailed;
      cont = std::move(continuation_);
    }
    if (cont) {
      cont();
    }
  }

  // Installs `cont` to run when the state becomes ready; runs it immediately (synchronously,
  // on this core) if it already is. Returns true when run synchronously.
  bool SetContinuation(Continuation cont) {
    {
      std::lock_guard<Spinlock> lock(mu_);
      if (state_ == State::kPending) {
        Kassert(!continuation_, "Future: Then called twice");
        continuation_ = std::move(cont);
        return false;
      }
    }
    cont();
    return true;
  }

  bool Ready() const {
    std::lock_guard<Spinlock> lock(mu_);
    return state_ != State::kPending;
  }

  State state() const {
    std::lock_guard<Spinlock> lock(mu_);
    return state_;
  }

  // Pre: ready. Moves the value out / rethrows the failure.
  template <typename U = T>
  std::enable_if_t<!std::is_void_v<U>, U> Take() {
    Kassert(state_ != State::kPending, "Future: Get before ready");
    if (state_ == State::kFailed) {
      std::rethrow_exception(exception_);
    }
    return std::move(*value_.ptr());
  }

  void TakeVoid() {
    Kassert(state_ != State::kPending, "Future: Get before ready");
    if (state_ == State::kFailed) {
      std::rethrow_exception(exception_);
    }
  }

  std::exception_ptr exception() const { return exception_; }

 private:
  mutable Spinlock mu_;
  State state_ = State::kPending;
  ValueStorage<T> value_;
  std::exception_ptr exception_;
  Continuation continuation_;
};

// Fulfills `promise` with the result of invoking f(fut), unwrapping nested futures and
// capturing thrown exceptions.
template <typename R, typename F, typename T>
void InvokeAndFulfill(Promise<flatten_t<R>> promise, F& f, Future<T> fut) {
  if constexpr (IsFuture<R>::value) {
    // f returns a future: forward its eventual result into our promise (flattening).
    using Inner = flatten_t<R>;
    try {
      R inner = f(std::move(fut));
      inner.Then([promise = std::move(promise)](Future<Inner> done) mutable {
        try {
          if constexpr (std::is_void_v<Inner>) {
            done.Get();
            promise.SetValue();
          } else {
            promise.SetValue(done.Get());
          }
        } catch (...) {
          promise.SetException(std::current_exception());
        }
      });
    } catch (...) {
      promise.SetException(std::current_exception());
    }
  } else if constexpr (std::is_void_v<R>) {
    try {
      f(std::move(fut));
      promise.SetValue();
    } catch (...) {
      promise.SetException(std::current_exception());
    }
  } else {
    try {
      promise.SetValue(f(std::move(fut)));
    } catch (...) {
      promise.SetException(std::current_exception());
    }
  }
}

}  // namespace future_internal

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<future_internal::SharedState<T>>()) {}

  Future<T> GetFuture();

  template <typename... Args>
  void SetValue(Args&&... args) {
    state_->SetValue(std::forward<Args>(args)...);
  }

  void SetException(std::exception_ptr eptr) { state_->SetException(std::move(eptr)); }

 private:
  std::shared_ptr<future_internal::SharedState<T>> state_;
};

template <typename T>
class Future {
 public:
  using ValueType = T;

  Future() = default;
  explicit Future(std::shared_ptr<future_internal::SharedState<T>> state)
      : state_(std::move(state)) {}

  Future(Future&&) noexcept = default;
  Future& operator=(Future&&) noexcept = default;
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  bool Valid() const { return state_ != nullptr; }
  bool Ready() const { return state_ && state_->Ready(); }

  // Pre: Ready(). Moves the value out or rethrows the stored exception. A continuation passed
  // to Then receives a fulfilled future and calls Get() on it (Figure 2 line 9).
  T Get() {
    Kassert(state_ != nullptr, "Future: Get on invalid future");
    if constexpr (std::is_void_v<T>) {
      state_->TakeVoid();
    } else {
      return state_->Take();
    }
  }

  // Monadic bind. F is invoked with the fulfilled Future<T>; returns Future of F's (flattened)
  // result. Runs synchronously when this future is already fulfilled.
  template <typename F>
  Future<future_internal::flatten_t<std::invoke_result_t<F, Future<T>>>> Then(F f) {
    using R = std::invoke_result_t<F, Future<T>>;
    using Flat = future_internal::flatten_t<R>;
    Kassert(state_ != nullptr, "Future: Then on invalid future");
    Promise<Flat> promise;
    Future<Flat> result = promise.GetFuture();
    auto state = state_;  // keep alive through the continuation
    state->SetContinuation(
        [state, f = std::move(f), promise = std::move(promise)]() mutable {
          future_internal::InvokeAndFulfill<R>(std::move(promise), f, Future<T>(state));
        });
    state_ = nullptr;  // consumed
    return result;
  }

 private:
  std::shared_ptr<future_internal::SharedState<T>> state_;
};

template <typename T>
Future<T> Promise<T>::GetFuture() {
  return Future<T>(state_);
}

// --- Constructors ----------------------------------------------------------------------------

template <typename T, typename... Args>
Future<T> MakeReadyFuture(Args&&... args) {
  Promise<T> promise;
  promise.SetValue(std::forward<Args>(args)...);
  return promise.GetFuture();
}

template <typename T>
Future<T> MakeFailedFuture(std::exception_ptr eptr) {
  Promise<T> promise;
  promise.SetException(std::move(eptr));
  return promise.GetFuture();
}

// Runs `f()` and captures its (flattened) result or exception into a future. Convenient at
// async API boundaries: callers get exception flow through the future instead of a throw.
template <typename F>
auto AsyncHelper(F&& f) -> Future<future_internal::flatten_t<std::invoke_result_t<F>>> {
  using R = std::invoke_result_t<F>;
  using Flat = future_internal::flatten_t<R>;
  Promise<Flat> promise;
  Future<Flat> result = promise.GetFuture();
  if constexpr (future_internal::IsFuture<R>::value) {
    try {
      f().Then([promise = std::move(promise)](Future<Flat> done) mutable {
        try {
          if constexpr (std::is_void_v<Flat>) {
            done.Get();
            promise.SetValue();
          } else {
            promise.SetValue(done.Get());
          }
        } catch (...) {
          promise.SetException(std::current_exception());
        }
      });
    } catch (...) {
      promise.SetException(std::current_exception());
    }
  } else if constexpr (std::is_void_v<R>) {
    try {
      f();
      promise.SetValue();
    } catch (...) {
      promise.SetException(std::current_exception());
    }
  } else {
    try {
      promise.SetValue(f());
    } catch (...) {
      promise.SetException(std::current_exception());
    }
  }
  return result;
}

// --- WhenAll ---------------------------------------------------------------------------------

// Collects the results of all futures (in order). If any fails, the aggregate fails with the
// first error observed (others' errors are swallowed, matching EbbRT's semantics).
//
// Join discipline (the scatter-gather RPC hot path rides this):
//   * an empty vector resolves immediately;
//   * already-ready members run their join step synchronously inside this call (Then's
//     ready fast path) — a fan-out whose replies all arrived returns a ready future without
//     bouncing through the event loop;
//   * the completion count is a lock-free atomic countdown: each member writes only its own
//     slot, so N replies landing on N cores join without a shared lock (the fetch_sub's
//     acq_rel ordering publishes every slot to whichever member finishes last);
//   * failure policy: the aggregate fails with the FIRST error observed, but only after
//     every member has completed — straggler continuations still have their slots and
//     promises, nothing is abandoned mid-flight or leaked (the shared gather state dies
//     with the last member's continuation).
template <typename T>
Future<std::vector<T>> WhenAll(std::vector<Future<T>> futures) {
  struct Gather {
    std::vector<T> values;
    std::atomic<std::size_t> remaining;
    Spinlock error_mu;  // error path only; the success path never takes it
    std::exception_ptr first_error;
    Promise<std::vector<T>> promise;
  };
  if (futures.empty()) {
    return MakeReadyFuture<std::vector<T>>(std::vector<T>{});
  }
  auto gather = std::make_shared<Gather>();
  gather->values.resize(futures.size());
  gather->remaining.store(futures.size(), std::memory_order_relaxed);
  Future<std::vector<T>> result = gather->promise.GetFuture();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    futures[i].Then([gather, i](Future<T> f) {
      try {
        gather->values[i] = f.Get();  // distinct slots: no lock needed
      } catch (...) {
        std::lock_guard<Spinlock> lock(gather->error_mu);
        if (!gather->first_error) {
          gather->first_error = std::current_exception();
        }
      }
      if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (gather->first_error) {
          gather->promise.SetException(gather->first_error);
        } else {
          gather->promise.SetValue(std::move(gather->values));
        }
      }
    });
  }
  return result;
}

// void flavor: completion only.
Future<void> WhenAll(std::vector<Future<void>> futures);

}  // namespace ebbrt

#endif  // EBBRT_SRC_FUTURE_FUTURE_H_
