#include "src/mem/page_allocator.h"

namespace ebbrt {

PageAllocatorRoot::PageAllocatorRoot(PhysArena& arena, std::size_t cores_per_node)
    : arena_(arena), cores_per_node_(cores_per_node ? cores_per_node : 1) {
  for (std::size_t node = 0; node < arena.nodes(); ++node) {
    reps_.push_back(std::make_unique<PageAllocator>(arena, node));
  }
}

PageAllocatorRoot::~PageAllocatorRoot() = default;

PageAllocator& PageAllocatorRoot::RepForCore(std::size_t machine_core) {
  std::size_t node = machine_core / cores_per_node_;
  if (node >= reps_.size()) {
    node = reps_.size() - 1;
  }
  return *reps_[node];
}

PageAllocator& PageAllocatorRoot::RepForNode(std::size_t node) {
  Kassert(node < reps_.size(), "PageAllocatorRoot: bad node");
  return *reps_[node];
}

PageAllocator& PageAllocator::HandleFault(EbbId id) {
  Context& ctx = CurrentContext();
  auto* root = static_cast<PageAllocatorRoot*>(ctx.runtime->FindRoot(id));
  Kbugon(root == nullptr, "PageAllocator: memory subsystem not installed on '%s'",
         ctx.runtime->name().c_str());
  PageAllocator& rep = root->RepForCore(ctx.machine_core);
  Runtime::CacheRep(id, &rep);
  return rep;
}

PageAllocator::PageAllocator(PhysArena& arena, std::size_t node)
    : arena_(arena), node_(node), first_pfn_(arena.NodeFirstPfn(node)),
      num_pages_(arena.NodePages(node)) {
  // Seed the free lists by carving the node's range into maximal naturally-aligned blocks
  // (alignment relative to the node base keeps buddy arithmetic closed within the node).
  Pfn pfn = first_pfn_;
  std::size_t remaining = num_pages_;
  while (remaining > 0) {
    std::size_t order = kMaxOrder;
    while (order > 0 && (((pfn - first_pfn_) & ((std::size_t{1} << order) - 1)) != 0 ||
                         (std::size_t{1} << order) > remaining)) {
      --order;
    }
    PushFree(pfn, order);
    pfn += std::size_t{1} << order;
    remaining -= std::size_t{1} << order;
  }
}

void PageAllocator::PushFree(Pfn pfn, std::size_t order) {
  PageInfo& info = arena_.InfoFor(pfn);
  info.kind = PageKind::kFree;
  info.order = static_cast<std::uint8_t>(order);
  info.node = static_cast<std::uint16_t>(node_);
  auto* block = reinterpret_cast<FreeBlock*>(arena_.PfnToAddr(pfn));
  block->prev = nullptr;
  block->next = free_lists_[order];
  if (block->next != nullptr) {
    block->next->prev = block;
  }
  free_lists_[order] = block;
  free_pages_ += std::size_t{1} << order;
}

void PageAllocator::RemoveFree(Pfn pfn, std::size_t order) {
  auto* block = reinterpret_cast<FreeBlock*>(arena_.PfnToAddr(pfn));
  if (block->prev != nullptr) {
    block->prev->next = block->next;
  } else {
    free_lists_[order] = block->next;
  }
  if (block->next != nullptr) {
    block->next->prev = block->prev;
  }
  free_pages_ -= std::size_t{1} << order;
}

Pfn PageAllocator::PopFree(std::size_t order) {
  FreeBlock* block = free_lists_[order];
  Kassert(block != nullptr, "PageAllocator: PopFree on empty list");
  free_lists_[order] = block->next;
  if (block->next != nullptr) {
    block->next->prev = nullptr;
  }
  free_pages_ -= std::size_t{1} << order;
  return arena_.AddrToPfn(block);
}

void* PageAllocator::AllocPages(std::size_t order) {
  Kassert(order <= kMaxOrder, "PageAllocator: order too large");
  std::lock_guard<Spinlock> lock(mu_);
  // Find the smallest order with a free block, splitting down as needed.
  std::size_t have = order;
  while (have <= kMaxOrder && free_lists_[have] == nullptr) {
    ++have;
  }
  if (have > kMaxOrder) {
    return nullptr;
  }
  Pfn pfn = PopFree(have);
  while (have > order) {
    --have;
    // Keep the low half, push the high half back as a free buddy.
    PushFree(pfn + (std::size_t{1} << have), have);
  }
  PageInfo& info = arena_.InfoFor(pfn);
  info.kind = PageKind::kBuddyAllocated;
  info.order = static_cast<std::uint8_t>(order);
  info.node = static_cast<std::uint16_t>(node_);
  // Interior pages: mark so stray frees are caught.
  for (std::size_t i = 1; i < (std::size_t{1} << order); ++i) {
    arena_.InfoFor(pfn + i).kind = PageKind::kBuddyTail;
  }
  return arena_.PfnToAddr(pfn);
}

void PageAllocator::FreePages(void* addr) {
  Pfn pfn = arena_.AddrToPfn(addr);
  std::lock_guard<Spinlock> lock(mu_);
  PageInfo& info = arena_.InfoFor(pfn);
  Kassert(info.kind == PageKind::kBuddyAllocated || info.kind == PageKind::kSlab ||
              info.kind == PageKind::kLarge,
          "PageAllocator: free of non-allocated block");
  std::size_t order = info.order;
  // Merge with the buddy while it is free and of equal order.
  while (order < kMaxOrder) {
    Pfn buddy = BuddyOf(pfn, order);
    if (buddy < first_pfn_ || buddy >= first_pfn_ + num_pages_) {
      break;
    }
    PageInfo& buddy_info = arena_.InfoFor(buddy);
    if (buddy_info.kind != PageKind::kFree || buddy_info.order != order) {
      break;
    }
    RemoveFree(buddy, order);
    buddy_info.kind = PageKind::kBuddyTail;
    if (buddy < pfn) {
      pfn = buddy;
    }
    ++order;
  }
  PushFree(pfn, order);
}

}  // namespace ebbrt
