#include "src/mem/phys_arena.h"

#include <sys/mman.h>

namespace ebbrt {

PhysArena::PhysArena(std::size_t bytes, std::size_t numa_nodes) : nodes_(numa_nodes) {
  Kassert(numa_nodes >= 1, "PhysArena: need at least one node");
  pages_ = bytes >> kPageShift;
  Kassert(pages_ >= numa_nodes * (1u << kMaxOrder),
          "PhysArena: arena too small for one max-order block per node");
  void* mapping = mmap(nullptr, pages_ << kPageShift, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  Kbugon(mapping == MAP_FAILED, "PhysArena: mmap of %zu pages failed", pages_);
  base_ = static_cast<std::uint8_t*>(mapping);
  pages_per_node_ = pages_ / nodes_;
  page_info_.resize(pages_);
}

PhysArena::~PhysArena() { munmap(base_, pages_ << kPageShift); }

}  // namespace ebbrt
