#include "src/mem/vmem.h"

#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <mutex>
#include <vector>

#include "src/mem/phys_arena.h"
#include "src/platform/debug.h"

namespace ebbrt {

// Process-wide registry + SIGSEGV dispatcher. The handler runs on the faulting thread
// synchronously, so invoking user code from it is well-defined for this use (the same pattern
// userfault-style allocators rely on).
class VMemRegistry {
 public:
  static VMemRegistry& Get() {
    static VMemRegistry instance;
    return instance;
  }

  VMemRegion& Register(void* base, std::size_t size, VMemRegion::FaultHandler handler) {
    std::lock_guard<std::mutex> lock(mu_);
    regions_.push_back(
        std::unique_ptr<VMemRegion>(new VMemRegion(base, size, std::move(handler))));
    return *regions_.back();
  }

  void Unregister(VMemRegion& region) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
      if (it->get() == &region) {
        regions_.erase(it);
        return;
      }
    }
  }

  VMemRegion* Find(void* addr) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& region : regions_) {
      if (region->Contains(addr)) {
        return region.get();
      }
    }
    return nullptr;
  }

 private:
  VMemRegistry() {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &VMemRegistry::OnFault;
    sa.sa_flags = SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGSEGV, &sa, &previous_);
  }

  static void OnFault(int signo, siginfo_t* info, void* ucontext) {
    VMemRegion* region = Get().Find(info->si_addr);
    if (region == nullptr) {
      // Not ours: restore the previous disposition and re-raise so real crashes still crash.
      sigaction(SIGSEGV, &Get().previous_, nullptr);
      raise(SIGSEGV);
      return;
    }
    region->faults_.fetch_add(1, std::memory_order_relaxed);
    if (region->handler_) {
      region->handler_(*region, info->si_addr);
    } else {
      // Default demand handler with fault-around, matching what a general-purpose kernel
      // does (map a cluster per fault rather than a single page).
      constexpr std::size_t kFaultAround = 16;
      auto base = reinterpret_cast<std::uintptr_t>(region->base());
      auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr) & ~(kPageSize - 1);
      std::size_t span = kFaultAround * kPageSize;
      std::uintptr_t end = base + region->size();
      if (addr + span > end) {
        span = end - addr;
      }
      mprotect(reinterpret_cast<void*>(addr), span, PROT_READ | PROT_WRITE);
    }
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<VMemRegion>> regions_;
  struct sigaction previous_;
};

VMemRegion::VMemRegion(void* base, std::size_t size, FaultHandler handler)
    : base_(base), size_(size), handler_(std::move(handler)) {}

VMemRegion::~VMemRegion() { munmap(base_, size_); }

void VMemRegion::MapPage(void* addr) {
  auto page = reinterpret_cast<std::uintptr_t>(addr) & ~(kPageSize - 1);
  int rc = mprotect(reinterpret_cast<void*>(page), kPageSize, PROT_READ | PROT_WRITE);
  Kbugon(rc != 0, "VMemRegion: mprotect failed");
}

void VMemRegion::MapAll(bool touch) {
  int rc = mprotect(base_, size_, PROT_READ | PROT_WRITE);
  Kbugon(rc != 0, "VMemRegion: mprotect failed");
  if (touch) {
    auto* p = static_cast<volatile std::uint8_t*>(base_);
    for (std::size_t off = 0; off < size_; off += kPageSize) {
      p[off] = p[off];
    }
  }
}

namespace vmem {

VMemRegion& Allocate(std::size_t bytes, VMemRegion::FaultHandler handler) {
  std::size_t size = (bytes + kPageSize - 1) & ~(kPageSize - 1);
  void* base = mmap(nullptr, size, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE,
                    -1, 0);
  Kbugon(base == MAP_FAILED, "vmem::Allocate: mmap of %zu bytes failed", size);
  return VMemRegistry::Get().Register(base, size, std::move(handler));
}

void Release(VMemRegion& region) { VMemRegistry::Get().Unregister(region); }

}  // namespace vmem

}  // namespace ebbrt
