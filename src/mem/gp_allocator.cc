#include "src/mem/gp_allocator.h"

#include <cstdlib>

namespace ebbrt {

namespace {

// Append-on-install registry of live GP roots, used to route any arena pointer back to its
// owning machine's allocator (mem::FindOwningRoot). Fixed-capacity array of atomics so the
// lookup — which sits on IOBuf release paths — takes no lock; slots are recycled when a
// machine is torn down.
constexpr std::size_t kMaxLiveRoots = 64;
std::atomic<GeneralPurposeAllocatorRoot*> g_live_roots[kMaxLiveRoots] = {};

void RegisterRoot(GeneralPurposeAllocatorRoot* root) {
  for (auto& slot : g_live_roots) {
    GeneralPurposeAllocatorRoot* expected = nullptr;
    if (slot.compare_exchange_strong(expected, root, std::memory_order_acq_rel)) {
      return;
    }
  }
  Kabort("gp_allocator: more than %zu live machine arenas", kMaxLiveRoots);
}

void UnregisterRoot(GeneralPurposeAllocatorRoot* root) {
  for (auto& slot : g_live_roots) {
    GeneralPurposeAllocatorRoot* expected = root;
    if (slot.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel)) {
      return;
    }
  }
}

}  // namespace

namespace mem {

namespace internal {
// Defined in heap_count.cc alongside the replacement ::operator new. Referencing it here
// forces that archive member into any binary that touches mem::stats(): a static-library
// operator new is only linked when some symbol in its object file is, and a silently absent
// hook would report 0.0 allocs for a path that mallocs.
void EnsureHeapCountLinked();
}  // namespace internal

Stats& stats() {
  internal::EnsureHeapCountLinked();
  static Stats instance;
  return instance;
}

GeneralPurposeAllocatorRoot* FindOwningRoot(const void* p) {
  for (auto& slot : g_live_roots) {
    GeneralPurposeAllocatorRoot* root = slot.load(std::memory_order_acquire);
    if (root != nullptr && root->pages().arena().Contains(p)) {
      return root;
    }
  }
  return nullptr;
}

void* AllocRouted(std::size_t size, bool* slab_backed) {
  if (HaveContext() &&
      CurrentRuntime().TryGetSubsystem<GeneralPurposeAllocatorRoot>(
          Subsystem::kGeneralPurposeAllocator) != nullptr) {
    void* p = GeneralPurposeAllocator::Instance()->Alloc(size);
    if (p != nullptr) {
      if (slab_backed != nullptr) {
        *slab_backed = true;
      }
      return p;
    }
  }
  if (slab_backed != nullptr) {
    *slab_backed = false;
  }
  stats().heap_fallback_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void FreeRouted(void* p) {
  if (p == nullptr) {
    return;
  }
  GeneralPurposeAllocatorRoot* owner = FindOwningRoot(p);
  if (owner == nullptr) {
    std::free(p);
    return;
  }
  if (HaveContext() && owner->runtime() == &CurrentRuntime()) {
    // Same machine: per-core fast path via the cached Ebb representative.
    GeneralPurposeAllocator::Instance()->Free(p);
    return;
  }
  owner->FreeAnywhere(p);
}

}  // namespace mem

GeneralPurposeAllocatorRoot::GeneralPurposeAllocatorRoot(PageAllocatorRoot& pages,
                                                         std::size_t num_cores,
                                                         Runtime* runtime)
    : pages_(pages), num_cores_(num_cores), runtime_(runtime) {
  // One slab cache Ebb per size class. Ids are taken from the machine-local dynamic range so
  // the class caches are themselves replaceable/invocable Ebbs.
  for (std::size_t i = 0; i < gp_internal::kSizeClasses.size(); ++i) {
    EbbId id = CurrentRuntime().AllocateLocalId();
    class_roots_[i] = std::make_unique<SlabCacheRoot>(pages, gp_internal::kSizeClasses[i], id,
                                                      num_cores);
    CurrentRuntime().InstallRoot(id, class_roots_[i].get());
  }
  reps_.resize(num_cores);
  RegisterRoot(this);
}

GeneralPurposeAllocatorRoot::~GeneralPurposeAllocatorRoot() { UnregisterRoot(this); }

void GeneralPurposeAllocatorRoot::FreeAnywhere(void* p) {
  PhysArena& arena = pages_.arena();
  Kassert(arena.Contains(p), "GeneralPurposeAllocatorRoot::FreeAnywhere: foreign pointer");
  // Running as a core of this machine: the ordinary per-core fast path applies.
  if (HaveContext() && runtime_ != nullptr && &CurrentRuntime() == runtime_) {
    RepFor(CurrentContext().machine_core).Free(p);
    return;
  }
  // Anything else — world actions, another machine's core, post-loop teardown — may not
  // touch a per-core freelist. Route slab objects to the owning node depot and large blocks
  // to the node buddy, both of which are lock-protected.
  mem::stats().remote_frees.fetch_add(1, std::memory_order_relaxed);
  PageInfo& info = arena.InfoForAddr(p);
  if (info.kind == PageKind::kSlab) {
    static_cast<SlabCacheRoot*>(info.owner)->RemoteFree(p, info.node);
    return;
  }
  Kassert(info.kind == PageKind::kLarge, "FreeAnywhere: free of non-allocated page");
  pages_.RepForNode(info.node).FreePages(p);
}

GeneralPurposeAllocator& GeneralPurposeAllocatorRoot::RepFor(std::size_t machine_core) {
  Kassert(machine_core < reps_.size(), "GeneralPurposeAllocatorRoot: bad core");
  std::lock_guard<Spinlock> lock(rep_mu_);
  if (reps_[machine_core] == nullptr) {
    reps_[machine_core] = std::make_unique<GeneralPurposeAllocator>(*this, machine_core);
  }
  return *reps_[machine_core];
}

GeneralPurposeAllocator& GeneralPurposeAllocator::HandleFault(EbbId id) {
  Context& ctx = CurrentContext();
  auto* root = static_cast<GeneralPurposeAllocatorRoot*>(ctx.runtime->FindRoot(id));
  Kbugon(root == nullptr, "GeneralPurposeAllocator: memory subsystem not installed on '%s'",
         ctx.runtime->name().c_str());
  GeneralPurposeAllocator& rep = root->RepFor(ctx.machine_core);
  Runtime::CacheRep(id, &rep);
  return rep;
}

GeneralPurposeAllocator::GeneralPurposeAllocator(GeneralPurposeAllocatorRoot& root,
                                                 std::size_t machine_core)
    : root_(root), machine_core_(machine_core) {
  for (std::size_t i = 0; i < gp_internal::kSizeClasses.size(); ++i) {
    class_reps_[i] = &root.class_root(i).RepFor(machine_core);
  }
}

void* GeneralPurposeAllocator::Alloc(std::size_t size) {
  std::size_t cls = gp_internal::ClassFor(size);
  if (__builtin_expect(cls < gp_internal::kSizeClasses.size(), true)) {
    return class_reps_[cls]->Alloc();
  }
  return AllocLarge(size);
}

void GeneralPurposeAllocator::Free(void* p) {
  PhysArena& arena = root_.pages().arena();
  Kassert(arena.Contains(p), "GeneralPurposeAllocator: free of foreign pointer");
  PageInfo& info = arena.InfoForAddr(p);
  if (__builtin_expect(info.kind == PageKind::kSlab, true)) {
    auto* cache_root = static_cast<SlabCacheRoot*>(info.owner);
    cache_root->RepFor(machine_core_).Free(p);
    return;
  }
  Kassert(info.kind == PageKind::kLarge, "GeneralPurposeAllocator: free of non-allocated page");
  FreeLarge(p, info);
}

void* GeneralPurposeAllocator::AllocLarge(std::size_t size) {
  std::size_t pages_needed = (size + kPageSize - 1) >> kPageShift;
  std::size_t order = 0;
  while ((std::size_t{1} << order) < pages_needed) {
    ++order;
  }
  if (order > kMaxOrder) {
    return nullptr;
  }
  PageAllocator& pages = root_.pages().RepForCore(machine_core_);
  void* block = pages.AllocPages(order);
  if (block == nullptr) {
    return nullptr;
  }
  PageInfo& info = pages.arena().InfoForAddr(block);
  info.kind = PageKind::kLarge;
  info.order = static_cast<std::uint8_t>(order);
  return block;
}

void GeneralPurposeAllocator::FreeLarge(void* p, PageInfo& info) {
  root_.pages().RepForNode(info.node).FreePages(p);
}

namespace mem {

void Install(Runtime& runtime, std::size_t num_cores, Config config) {
  auto arena = std::make_shared<PhysArena>(config.arena_bytes, config.numa_nodes);
  std::size_t cores_per_node = config.cores_per_node != 0
                                   ? config.cores_per_node
                                   : (num_cores + config.numa_nodes - 1) / config.numa_nodes;
  auto page_root = std::make_shared<PageAllocatorRoot>(*arena, cores_per_node);
  runtime.InstallRoot(kPageAllocatorId, page_root.get());
  runtime.SetSubsystem(Subsystem::kPageAllocator, page_root.get());
  // GP root construction allocates Ebb ids, which needs a current-runtime context; callers
  // install memory before the loops run, so borrow core 0's identity.
  ScopedContext ctx(runtime, runtime.global_core(0), 0, runtime.hosted());
  auto gp_root = std::make_shared<GeneralPurposeAllocatorRoot>(*page_root, num_cores, &runtime);
  runtime.InstallRoot(kGeneralPurposeAllocatorId, gp_root.get());
  runtime.SetSubsystem(Subsystem::kGeneralPurposeAllocator, gp_root.get());
  // Adoption order = destruction constraints reversed: the GP root (adopted last) dies
  // first, unregistering its arena from the routed-free registry before the arena unmaps.
  runtime.Adopt(std::move(arena));
  runtime.Adopt(std::move(page_root));
  runtime.Adopt(std::move(gp_root));
}

}  // namespace mem

}  // namespace ebbrt
