#include "src/mem/slab_allocator.h"

namespace ebbrt {

namespace {
inline void*& NextOf(void* obj) { return *static_cast<void**>(obj); }
}  // namespace

SlabCacheRoot::SlabCacheRoot(PageAllocatorRoot& pages, std::size_t object_size, EbbId id,
                             std::size_t num_cores)
    : pages_(pages), object_size_(object_size), id_(id) {
  Kassert(object_size >= sizeof(void*), "SlabCacheRoot: object too small for a link");
  // Pick the smallest slab order that fits at least 8 objects (single page when possible).
  slab_order_ = 0;
  while (slab_order_ < kMaxOrder &&
         ((kPageSize << slab_order_) / object_size_) < 8) {
    ++slab_order_;
  }
  objects_per_slab_ = (kPageSize << slab_order_) / object_size_;
  Kassert(objects_per_slab_ >= 1, "SlabCacheRoot: object larger than max slab");
  reps_ = std::vector<std::atomic<SlabCache*>>(num_cores);
  depots_ = std::vector<Depot>(pages.nodes());
}

SlabCacheRoot::~SlabCacheRoot() {
  for (auto& rep : reps_) {
    delete rep.load(std::memory_order_relaxed);
  }
}

void SlabCacheRoot::RemoteFree(void* p, std::size_t node) {
  Kassert(node < depots_.size(), "SlabCacheRoot::RemoteFree: bad node");
  Depot& depot = depots_[node];
  std::lock_guard<Spinlock> lock(depot.mu);
  NextOf(p) = depot.head;
  depot.head = p;
  ++depot.count;
}

SlabCache& SlabCacheRoot::RepFor(std::size_t machine_core) {
  Kassert(machine_core < reps_.size(), "SlabCacheRoot: bad core");
  SlabCache* rep = reps_[machine_core].load(std::memory_order_acquire);
  if (__builtin_expect(rep != nullptr, true)) {
    return *rep;
  }
  std::lock_guard<Spinlock> lock(rep_mu_);
  rep = reps_[machine_core].load(std::memory_order_relaxed);
  if (rep == nullptr) {
    rep = new SlabCache(*this, machine_core);
    reps_[machine_core].store(rep, std::memory_order_release);
  }
  return *rep;
}

SlabCache& SlabCache::HandleFault(EbbId id) {
  Context& ctx = CurrentContext();
  auto* root = static_cast<SlabCacheRoot*>(ctx.runtime->FindRoot(id));
  Kbugon(root == nullptr, "SlabCache: no root for id %u on '%s'", id,
         ctx.runtime->name().c_str());
  SlabCache& rep = root->RepFor(ctx.machine_core);
  Runtime::CacheRep(id, &rep);
  return rep;
}

SlabCache::SlabCache(SlabCacheRoot& root, std::size_t machine_core)
    : root_(root), machine_core_(machine_core) {
  node_ = root_.pages().RepForCore(machine_core).node();
}

void* SlabCache::Alloc() {
  if (__builtin_expect(freelist_ != nullptr, true)) {
    void* obj = freelist_;
    freelist_ = NextOf(obj);
    --free_count_;
    return obj;
  }
  if (!Refill()) {
    return nullptr;
  }
  void* obj = freelist_;
  freelist_ = NextOf(obj);
  --free_count_;
  return obj;
}

void SlabCache::Free(void* p) {
  NextOf(p) = freelist_;
  freelist_ = p;
  if (__builtin_expect(++free_count_ > kWatermark, false)) {
    FlushHalfToDepot();
  }
}

bool SlabCache::RefillFromDepot() {
  SlabCacheRoot::Depot& depot = root_.depot_for(node_);
  std::lock_guard<Spinlock> lock(depot.mu);
  if (depot.head == nullptr) {
    return false;
  }
  // Take the whole depot chain in O(1); balancing granularity is the flush batch.
  freelist_ = depot.head;
  free_count_ = depot.count;
  depot.head = nullptr;
  depot.count = 0;
  return true;
}

void SlabCache::FlushHalfToDepot() {
  // Walk to the midpoint and hand the tail half to the node depot.
  std::size_t keep = free_count_ / 2;
  void* cursor = freelist_;
  for (std::size_t i = 1; i < keep; ++i) {
    cursor = NextOf(cursor);
  }
  void* flush_head = NextOf(cursor);
  NextOf(cursor) = nullptr;
  std::size_t flush_count = free_count_ - keep;
  free_count_ = keep;
  // Find the flush chain's tail to splice in O(len); lists here are short relative to
  // watermark and this path is rare (1 in kWatermark/2 frees).
  void* tail = flush_head;
  while (NextOf(tail) != nullptr) {
    tail = NextOf(tail);
  }
  SlabCacheRoot::Depot& depot = root_.depot_for(node_);
  std::lock_guard<Spinlock> lock(depot.mu);
  NextOf(tail) = depot.head;
  depot.head = flush_head;
  depot.count += flush_count;
}

bool SlabCache::Refill() {
  if (RefillFromDepot()) {
    return true;
  }
  // Carve a fresh slab from this node's buddy allocator.
  PageAllocator& pages = root_.pages().RepForNode(node_);
  void* slab = pages.AllocPages(root_.slab_order());
  if (slab == nullptr) {
    return false;
  }
  PhysArena& arena = pages.arena();
  Pfn first = arena.AddrToPfn(slab);
  for (std::size_t i = 0; i < (std::size_t{1} << root_.slab_order()); ++i) {
    PageInfo& info = arena.InfoFor(first + i);
    info.kind = PageKind::kSlab;
    info.owner = &root_;
  }
  root_.count_slab();
  auto* bytes = static_cast<std::uint8_t*>(slab);
  std::size_t object_size = root_.object_size();
  std::size_t count = root_.objects_per_slab();
  for (std::size_t i = 0; i < count; ++i) {
    void* obj = bytes + i * object_size;
    NextOf(obj) = freelist_;
    freelist_ = obj;
  }
  free_count_ += count;
  return true;
}

}  // namespace ebbrt
