// BufferPool — per-core recycling pool of fixed MTU-class network buffers (§3.4 applied to
// the datapath).
//
// The slab allocator already makes a short-lived buffer cheap (a per-core freelist pop); the
// pool makes the *hottest* buffers — RX frames posted to the NIC ring and TX segment
// head buffers — cost literally nothing in steady state: a frame is allocated once, rides
// the datapath as a refcounted IOBuf, and when its last view dies it snaps back onto the
// freelist of the core that owns it, headroom re-reserved, ready to be posted or filled
// again. No size-class lookup, no slab bookkeeping, no atomics.
//
// Cross-core lifecycle: a frame is normally freed on the core that allocated it (RSS pins a
// connection's processing to one core), so the common path is lock-free. When a view does
// die elsewhere — a response retained by a connection on another core, a world action, late
// teardown — the dead block BECOMES an interconnect node: a BlockNode is placement-newed
// into the (dead) storage header and CAS-published onto the owner core's exchange list, so
// the return ride is the same lock-free mesh every other cross-core message takes. The
// owner's dispatch loop fires the node between events and the block snaps back onto its
// freelist — remote frees are recycled within one event boundary without any spinlock
// (the old remote-free magazine and its lock are gone).
//
// Exhaustion is not an error: when a core holds no recycled block and the pool is at its
// cap, Alloc falls back to an ordinary slab-backed IOBuf (mem::stats().pool_misses ticks and
// that buffer simply returns to the slab when released).
#ifndef EBBRT_SRC_MEM_BUFFER_POOL_H_
#define EBBRT_SRC_MEM_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/runtime.h"
#include "src/iobuf/iobuf.h"
#include "src/platform/spinlock.h"

namespace ebbrt {

class BufferPool;

class BufferPoolRoot {
 public:
  struct Config {
    // Whole-block size, chosen to land exactly on a GP size class: the data area is
    // block_bytes - IOBuf::kStorageHeaderBytes (3008 B — an MTU frame plus headroom).
    std::size_t block_bytes = 3072;
    std::size_t headroom = 64;        // pre-reserved for Ethernet/IP/TCP header prepends
    std::size_t per_core_cap = 256;   // initial pooled blocks per core; the adaptive FLOOR

    // --- Adaptive cap (ROADMAP "descriptor-cache sizing") ----------------------------------
    // The effective per-core cap starts at per_core_cap and self-tunes between it and
    // per_core_cap_max: `grow_miss_streak` consecutive at-cap misses (demand the pool had
    // to bounce to the slab) grow it toward the observed in_use high-water mark; once
    // `decay_quiet_events` consecutive pool-touching event boundaries (an Alloc or a
    // same-core release arms the hook) pass with no at-cap pressure, the excess halves
    // back toward the floor and surplus recycled blocks return to the slab.
    std::size_t per_core_cap_max = 1024;
    std::size_t grow_miss_streak = 8;
    std::size_t decay_quiet_events = 16;
  };

  BufferPoolRoot(Runtime& runtime, std::size_t num_cores, Config config);
  BufferPoolRoot(Runtime& runtime, std::size_t num_cores);
  ~BufferPoolRoot();

  BufferPool& RepFor(std::size_t machine_core);
  Runtime& runtime() { return runtime_; }
  const Config& config() const { return config_; }

  // Installs a pool on `runtime` (requires mem::Install to have run) and adopts its
  // lifetime. The pool becomes reachable as Subsystem::kBufferPool.
  static void Install(Runtime& runtime, std::size_t num_cores, Config config);
  static void Install(Runtime& runtime, std::size_t num_cores);

  // Routes a released block back to its owner core — called by the IOBuf storage dispose
  // hook from ANY context. Same-core frees take the lock-free local path; everything else
  // rides the interconnect home as a BlockNode carved from the dead block itself.
  void Release(IOBuf::SharedStorage* storage);

 private:
  Runtime& runtime_;
  Config config_;
  std::vector<std::unique_ptr<BufferPool>> reps_;
};

class alignas(kCacheLineSize) BufferPool {
 public:
  BufferPool(BufferPoolRoot& root, std::size_t machine_core);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // A recycled (or freshly carved) buffer with `headroom` pre-reserved and an empty view —
  // CreateReserve semantics. Never fails: pool exhaustion falls back to the ordinary
  // slab-backed IOBuf path (pool_misses). Must run on this rep's core.
  std::unique_ptr<IOBuf> Alloc();

  // The current core's pool rep (nullptr when no pool subsystem is installed).
  static BufferPool* Local();

  // Observability.
  std::size_t free_blocks() const { return free_count_; }
  std::size_t outstanding() const { return outstanding_.load(std::memory_order_relaxed); }
  // The adaptive per-core cap currently in force (see Config): floor per_core_cap, ceiling
  // per_core_cap_max, moved by at-cap pressure and event-boundary quiet.
  std::size_t cap() const { return cap_; }
  // Occupancy telemetry (ROADMAP "descriptor-cache sizing"): pooled blocks of THIS core
  // currently checked out, and the most that has ever been at once. Atomic because a block
  // may be released from another core/context (the magazine path).
  std::size_t in_use() const { return in_use_.load(std::memory_order_relaxed); }
  std::size_t in_use_hwm() const { return in_use_hwm_.load(std::memory_order_relaxed); }

 private:
  friend class BufferPoolRoot;

  // A released block, linked through the first word of its (dead) SharedStorage header.
  struct FreeLink {
    FreeLink* next;
  };
  // A remotely-freed block in flight home: an interconnect node placement-newed into the
  // dead storage header (the block IS the message — no allocation, no magazine, no lock).
  // Defined in the .cc.
  struct BlockNode;

  static void PoolDispose(IOBuf::SharedStorage* storage);

  void NoteCheckedOut();          // occupancy accounting around Alloc/Release
  void NoteReleased();
  void FreeLocal(void* block);    // owner core only: lock-free push
  void FreeRemote(void* block);   // any context: publish a BlockNode on the interconnect
  void ReturnToSlab(void* block); // any context: give the block back to the GP allocator
  void MaybeQueueBoundaryHook();  // owner core: adaptive-cap decay tick at the event edge
  void NoteAtCapMiss();           // adaptive policy: grow after a sustained miss streak
  void MaybeDecayCap();           // adaptive policy: event-boundary decay when quiet
  void TrimFreelistToCap();       // return surplus recycled blocks to the slab

  BufferPoolRoot& root_;
  std::size_t machine_core_;
  FreeLink* freelist_ = nullptr;
  std::size_t free_count_ = 0;
  // Pooled blocks currently alive (bounds carving at the cap). Atomic because the no-event-
  // plane fallback of FreeRemote retires a block from a foreign context; every other access
  // is owner-core-only, so relaxed ops cost nothing.
  std::atomic<std::size_t> outstanding_{0};
  bool hook_queued_ = false;

  // Adaptive cap state (owner core only, like the freelist).
  std::size_t cap_;                    // effective cap: [per_core_cap, per_core_cap_max]
  std::size_t at_cap_miss_streak_ = 0; // consecutive at-cap misses (reset by any hit)
  std::size_t quiet_events_ = 0;       // event boundaries since the last at-cap miss
  bool pressured_this_event_ = false;  // an at-cap miss happened since the last boundary
  std::atomic<std::size_t> in_use_{0};      // pooled blocks currently checked out
  std::atomic<std::size_t> in_use_hwm_{0};  // high-water mark of in_use_
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_MEM_BUFFER_POOL_H_
