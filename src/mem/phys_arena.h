// PhysArena — the machine's simulated physical memory.
//
// EbbRT identity-maps all of physical memory and never pages it out, which is what makes
// zero-copy I/O with ordinary allocations possible (§3.4, §3.6): any allocated buffer is
// physically contiguous and pinned from the device's point of view. We model physical memory
// as one big mmap'd arena per machine; "physical addresses" are offsets into it, identity
// mapping is the arena's base address, and a side table holds per-page metadata (the analogue
// of Linux's struct page array) used by the allocators to classify any pointer.
#ifndef EBBRT_SRC_MEM_PHYS_ARENA_H_
#define EBBRT_SRC_MEM_PHYS_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/platform/debug.h"

namespace ebbrt {

inline constexpr std::size_t kPageShift = 12;
inline constexpr std::size_t kPageSize = 1 << kPageShift;  // 4 KiB
inline constexpr std::size_t kMaxOrder = 10;               // largest buddy block: 4 MiB

using Pfn = std::size_t;

enum class PageKind : std::uint8_t {
  kFree,            // in a buddy free list (first page of the block carries the order)
  kBuddyTail,       // interior page of a free or allocated block
  kBuddyAllocated,  // first page of a block handed out by the page allocator
  kSlab,            // backs a slab cache (owner = SlabCacheRoot*)
  kLarge,           // first page of a large GP allocation (order recorded)
};

struct PageInfo {
  PageKind kind = PageKind::kBuddyTail;
  std::uint8_t order = 0;
  std::uint16_t node = 0;
  void* owner = nullptr;  // PageKind::kSlab: the owning SlabCacheRoot
};

class PhysArena {
 public:
  // Reserves `bytes` (rounded down to a page multiple) of "physical" memory split evenly
  // across `numa_nodes`.
  PhysArena(std::size_t bytes, std::size_t numa_nodes);
  ~PhysArena();

  PhysArena(const PhysArena&) = delete;
  PhysArena& operator=(const PhysArena&) = delete;

  std::size_t pages() const { return pages_; }
  std::size_t nodes() const { return nodes_; }

  std::uint8_t* PfnToAddr(Pfn pfn) const {
    Kassert(pfn < pages_, "PhysArena: pfn out of range");
    return base_ + (pfn << kPageShift);
  }

  Pfn AddrToPfn(const void* addr) const {
    auto offset = static_cast<std::size_t>(static_cast<const std::uint8_t*>(addr) - base_);
    Kassert(offset < pages_ << kPageShift, "PhysArena: address outside arena");
    return offset >> kPageShift;
  }

  bool Contains(const void* addr) const {
    auto* p = static_cast<const std::uint8_t*>(addr);
    return p >= base_ && p < base_ + (pages_ << kPageShift);
  }

  PageInfo& InfoFor(Pfn pfn) {
    Kassert(pfn < pages_, "PhysArena: pfn out of range");
    return page_info_[pfn];
  }
  PageInfo& InfoForAddr(const void* addr) { return InfoFor(AddrToPfn(addr)); }

  // Node n owns pfns [NodeFirstPfn(n), NodeFirstPfn(n) + NodePages(n)).
  Pfn NodeFirstPfn(std::size_t node) const { return node * pages_per_node_; }
  std::size_t NodePages(std::size_t node) const {
    return node + 1 == nodes_ ? pages_ - node * pages_per_node_ : pages_per_node_;
  }

 private:
  std::uint8_t* base_;
  std::size_t pages_;
  std::size_t nodes_;
  std::size_t pages_per_node_;
  std::vector<PageInfo> page_info_;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_MEM_PHYS_ARENA_H_
