// Process-wide generic-heap allocation accounting: replacement ::operator new/new[] that
// tick mem::stats().generic_heap_allocs before deferring to std::malloc.
//
// Why replace the global operators at all: the datapath counters in mem::Stats only see
// allocations that go THROUGH mem:: (IOBuf storage, pools, slabs). Everything a std::string
// copy, a make_shared control block, or a container rehash allocates is invisible to them —
// which is exactly how the old item plane shipped 3–4 hidden mallocs per SET under gates
// that read 0.0. The counter here sees every generic-heap allocation in the process, so the
// fig13 `heap_allocs_per_op` column (and its CI gate) measures the whole binary, not a
// subsystem's view of itself.
//
// The hook is deliberately dumb: one relaxed fetch_add and a malloc. No size histogram, no
// caller attribution — benches snapshot deltas around a measured phase, the same protocol
// every other mem::Stats counter uses. Free is not counted (the gates are about allocation
// pressure; frees follow from allocs).
//
// Linkage: this file exports mem::internal::EnsureHeapCountLinked(), which mem::stats()
// calls, so any binary that reads the counters necessarily links the operators that feed
// them (a static-library archive member is only pulled in when referenced).
#include <cstddef>
#include <cstdlib>
#include <new>

#include "src/mem/gp_allocator.h"

namespace ebbrt {
namespace mem {
namespace internal {
void EnsureHeapCountLinked() {}
}  // namespace internal
}  // namespace mem
}  // namespace ebbrt

namespace {

// mem::stats() is a function-local static of atomics: safe to touch from the very first
// pre-main allocation (magic-static guard, no allocation in Stats construction) and never
// touched on the delete path, so static destruction order cannot bite.
void* CountedAlloc(std::size_t size) {
  ebbrt::mem::stats().generic_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  ebbrt::mem::stats().generic_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align < alignof(std::max_align_t)) {
    align = alignof(std::max_align_t);
  }
  std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAllocAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAllocAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
