// SlabAllocator — fixed-size object caches in the style of Linux's SLQB (§3.4).
//
// Per-core representatives hold object free lists; a per-NUMA-node shared depot balances
// objects between cores (a core flushes half its list when it exceeds the watermark and
// refills from the depot before carving fresh pages). The fast path — pop/push on the
// core-local list — uses no atomic operations at all: EbbRT events cannot be preempted or
// migrate, which is exactly the property the paper exploits ("most allocations can be serviced
// from a per-core cache without any synchronization").
//
// Backing pages come from the node's buddy allocator and are tagged in the arena's page-info
// table so any pointer can be routed back to its cache (the general-purpose allocator's Free
// uses this).
#ifndef EBBRT_SRC_MEM_SLAB_ALLOCATOR_H_
#define EBBRT_SRC_MEM_SLAB_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/core/ebb_ref.h"
#include "src/core/runtime.h"
#include "src/mem/page_allocator.h"
#include "src/platform/spinlock.h"

namespace ebbrt {

class SlabCache;

class SlabCacheRoot {
 public:
  // A cache of `object_size`-byte objects. `id` is the Ebb id reps are reached through.
  SlabCacheRoot(PageAllocatorRoot& pages, std::size_t object_size, EbbId id,
                std::size_t num_cores);
  ~SlabCacheRoot();

  SlabCache& RepFor(std::size_t machine_core);

  std::size_t object_size() const { return object_size_; }
  EbbId id() const { return id_; }
  PageAllocatorRoot& pages() { return pages_; }

  // Per-node depot of surplus objects (intrusive singly-linked, spinlock-protected).
  struct alignas(kCacheLineSize) Depot {
    Spinlock mu;
    void* head = nullptr;
    std::size_t count = 0;
  };
  Depot& depot_for(std::size_t node) { return depots_[node]; }

  // Returns an object to node `node`'s depot directly — the remote-free path for callers
  // that are NOT running as a core of this machine (world actions, foreign machines, late
  // teardown). Spinlock-protected; the next core to refill from the depot recycles it.
  void RemoteFree(void* p, std::size_t node);

  // Pages a slab of this size occupies (larger objects use multi-page slabs).
  std::size_t slab_order() const { return slab_order_; }
  std::size_t objects_per_slab() const { return objects_per_slab_; }

  std::size_t total_slabs() const { return total_slabs_.load(std::memory_order_relaxed); }
  void count_slab() { total_slabs_.fetch_add(1, std::memory_order_relaxed); }

 private:
  PageAllocatorRoot& pages_;
  std::size_t object_size_;
  EbbId id_;
  std::size_t slab_order_;
  std::size_t objects_per_slab_;
  // Lock-free rep lookup: RepFor sits on the Free() fast path (any pointer routes back to
  // its cache through the page-info table), so reads must not synchronize. Constructed
  // under rep_mu_ with a double-check, published with release semantics.
  std::vector<std::atomic<SlabCache*>> reps_;
  std::vector<Depot> depots_;
  std::atomic<std::size_t> total_slabs_{0};
  Spinlock rep_mu_;
};

// Cache-line aligned: representatives of adjacent cores are allocated back to back, and the
// freelist head is written on every alloc/free — sharing a line across cores would put
// coherence traffic on the very path whose point is to have none.
class alignas(kCacheLineSize) SlabCache {
 public:
  static SlabCache& HandleFault(EbbId id);

  SlabCache(SlabCacheRoot& root, std::size_t machine_core);

  // Fast path: pop the core-local free list (no atomics). Slow path: refill from the node
  // depot or carve a new slab from the buddy allocator.
  void* Alloc();
  // Fast path: push onto the core-local free list; flushes half to the node depot past the
  // watermark so one core's frees feed another core's allocs.
  void Free(void* p);

  std::size_t local_free() const { return free_count_; }
  SlabCacheRoot& root() { return root_; }

 private:
  static constexpr std::size_t kWatermark = 4096;  // objects kept core-local before flushing

  bool Refill();
  void FlushHalfToDepot();
  bool RefillFromDepot();

  SlabCacheRoot& root_;
  std::size_t machine_core_;
  std::size_t node_;
  void* freelist_ = nullptr;  // next pointer embedded in the first word of each free object
  std::size_t free_count_ = 0;
  char padding_[kCacheLineSize];  // keep the next heap object off this rep's line
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_MEM_SLAB_ALLOCATOR_H_
