#include "src/mem/buffer_pool.h"

#include <new>

#include "src/event/event_manager.h"
#include "src/mem/gp_allocator.h"

namespace ebbrt {

// Storage dispose hook for pooled blocks: the last view died — snap the block back to its
// owner core instead of the slab. free_arg carries the root, origin_core the owner.
void BufferPool::PoolDispose(IOBuf::SharedStorage* storage) {
  static_cast<BufferPoolRoot*>(storage->free_arg)->Release(storage);
}

BufferPoolRoot::BufferPoolRoot(Runtime& runtime, std::size_t num_cores, Config config)
    : runtime_(runtime), config_(config) {
  Kassert(config_.block_bytes > IOBuf::kStorageHeaderBytes + config_.headroom,
          "BufferPoolRoot: block too small for header + headroom");
  reps_.reserve(num_cores);
  for (std::size_t i = 0; i < num_cores; ++i) {
    reps_.push_back(std::unique_ptr<BufferPool>(new BufferPool(*this, i)));
  }
}

BufferPoolRoot::BufferPoolRoot(Runtime& runtime, std::size_t num_cores)
    : BufferPoolRoot(runtime, num_cores, Config{}) {}

BufferPoolRoot::~BufferPoolRoot() = default;

BufferPool& BufferPoolRoot::RepFor(std::size_t machine_core) {
  Kassert(machine_core < reps_.size(), "BufferPoolRoot: bad core");
  return *reps_[machine_core];
}

void BufferPoolRoot::Install(Runtime& runtime, std::size_t num_cores) {
  Install(runtime, num_cores, Config{});
}

void BufferPoolRoot::Install(Runtime& runtime, std::size_t num_cores, Config config) {
  Kassert(runtime.TryGetSubsystem<GeneralPurposeAllocatorRoot>(
              Subsystem::kGeneralPurposeAllocator) != nullptr,
          "BufferPoolRoot::Install: memory subsystem must be installed first");
  auto root = std::make_shared<BufferPoolRoot>(runtime, num_cores, config);
  runtime.SetSubsystem(Subsystem::kBufferPool, root.get());
  runtime.Adopt(std::move(root));
}

void BufferPoolRoot::Release(IOBuf::SharedStorage* storage) {
  BufferPool& rep = RepFor(storage->origin_core);
  rep.NoteReleased();  // the block leaves the datapath here, whichever route it takes home
  if (HaveContext() && &CurrentRuntime() == &runtime_ &&
      CurrentContext().machine_core == storage->origin_core) {
    rep.FreeLocal(storage);
    return;
  }
  mem::stats().remote_frees.fetch_add(1, std::memory_order_relaxed);
  rep.FreeRemote(storage);
}

BufferPool* BufferPool::Local() {
  if (!HaveContext()) {
    return nullptr;
  }
  auto* root = CurrentRuntime().TryGetSubsystem<BufferPoolRoot>(Subsystem::kBufferPool);
  if (root == nullptr) {
    return nullptr;
  }
  return &root->RepFor(CurrentContext().machine_core);
}

BufferPool::BufferPool(BufferPoolRoot& root, std::size_t machine_core)
    : root_(root), machine_core_(machine_core) {}

std::unique_ptr<IOBuf> BufferPool::Alloc() {
  Kassert(HaveContext() && &CurrentRuntime() == &root_.runtime() &&
              CurrentContext().machine_core == machine_core_,
          "BufferPool::Alloc: wrong core");
  const BufferPoolRoot::Config& cfg = root_.config();
  std::size_t data_bytes = cfg.block_bytes - IOBuf::kStorageHeaderBytes;
  void* block = nullptr;
  if (freelist_ != nullptr || DrainMagazine()) {
    block = freelist_;
    freelist_ = freelist_->next;
    --free_count_;
    mem::stats().pool_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    mem::stats().pool_misses.fetch_add(1, std::memory_order_relaxed);
    if (outstanding_ < cfg.per_core_cap) {
      block = GeneralPurposeAllocator::Instance()->Alloc(cfg.block_bytes);
      if (block != nullptr) {
        ++outstanding_;
        // A carve is an IOBuf storage block taken from the slab — count it like every
        // other owned-storage allocation (the at-cap fallback below counts through
        // CreateReserve), so iobuf_allocs stays consistent across both miss paths.
        mem::stats().iobuf_allocs.fetch_add(1, std::memory_order_relaxed);
        mem::stats().iobuf_slab_allocs.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (block == nullptr) {
      // Pool at cap (or arena exhausted): an ordinary slab-backed buffer — it returns to
      // the slab, not the pool, when released. No failure surface.
      return IOBuf::CreateReserve(data_bytes, cfg.headroom);
    }
  }
  MaybeQueueDrainHook();
  NoteCheckedOut();
  auto* storage = new (block) IOBuf::SharedStorage;
  storage->buffer = static_cast<std::uint8_t*>(block) + IOBuf::kStorageHeaderBytes;
  storage->dispose = &PoolDispose;
  storage->free_fn = nullptr;
  storage->free_arg = &root_;
  storage->origin_core = static_cast<std::uint32_t>(machine_core_);
  return std::unique_ptr<IOBuf>(
      new IOBuf(storage->buffer, data_bytes, storage->buffer + cfg.headroom, 0, storage));
}

void BufferPool::NoteCheckedOut() {
  std::size_t now = in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Per-core high-water mark: only this core checks blocks out, so a plain load/store pair
  // cannot lose an update.
  if (now > in_use_hwm_.load(std::memory_order_relaxed)) {
    in_use_hwm_.store(now, std::memory_order_relaxed);
  }
  // Cost note: the global occupancy tick is one relaxed RMW beside the pool_hits/misses
  // tick every Alloc already pays on this same stats line, and the hwm CAS only runs while
  // a new process-wide peak is being set (ramp/burst) — steady state takes the cheap load.
  mem::Stats& stats = mem::stats();
  std::uint64_t global = stats.pool_in_use.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hwm = stats.pool_in_use_hwm.load(std::memory_order_relaxed);
  while (global > hwm &&
         !stats.pool_in_use_hwm.compare_exchange_weak(hwm, global,
                                                      std::memory_order_relaxed)) {
  }
}

void BufferPool::NoteReleased() {
  in_use_.fetch_sub(1, std::memory_order_relaxed);
  mem::stats().pool_in_use.fetch_sub(1, std::memory_order_relaxed);
}

void BufferPool::FreeLocal(void* block) {
  if (free_count_ >= root_.config().per_core_cap) {
    // The pool is full: hand the block back to the slab path.
    --outstanding_;
    GeneralPurposeAllocator::Instance()->Free(block);
    return;
  }
  auto* link = static_cast<FreeLink*>(block);
  link->next = freelist_;
  freelist_ = link;
  ++free_count_;
}

void BufferPool::FreeRemote(void* block) {
  auto* link = static_cast<FreeLink*>(block);
  std::lock_guard<Spinlock> lock(magazine_.mu);
  link->next = magazine_.head;
  magazine_.head = link;
  ++magazine_.count;
}

bool BufferPool::DrainMagazine() {
  FreeLink* head;
  std::size_t count;
  {
    std::lock_guard<Spinlock> lock(magazine_.mu);
    head = magazine_.head;
    count = magazine_.count;
    magazine_.head = nullptr;
    magazine_.count = 0;
  }
  if (head == nullptr) {
    return false;
  }
  // Splice onto the local list (walk to the magazine tail; remote frees are rare and the
  // batch is small by construction — bounded by the per-core cap).
  FreeLink* tail = head;
  while (tail->next != nullptr) {
    tail = tail->next;
  }
  tail->next = freelist_;
  freelist_ = head;
  free_count_ += count;
  return true;
}

void BufferPool::MaybeQueueDrainHook() {
  if (drain_hook_queued_) {
    return;
  }
  drain_hook_queued_ = true;
  // Drain whatever other cores freed during this event at its boundary, so a burst's worth
  // of cross-core releases is recycled before the next event needs buffers.
  event::Local().QueueEndOfEvent([this] {
    drain_hook_queued_ = false;
    DrainMagazine();
  });
}

}  // namespace ebbrt
