#include "src/mem/buffer_pool.h"

#include <new>

#include "src/event/event_manager.h"
#include "src/event/interconnect.h"
#include "src/mem/gp_allocator.h"

namespace ebbrt {

// A remotely-freed block riding the interconnect home. The node is placement-newed into the
// dead SharedStorage header (sizeof(BlockNode) << IOBuf::kStorageHeaderBytes), so the block
// itself is the message: zero allocations, and the old spinlocked magazine is simply gone.
// Fire runs on the owner core's loop — exactly where FreeLocal is legal.
struct BufferPool::BlockNode final : InterconnectNode {
  explicit BlockNode(BufferPool* p) : pool(p) {}
  void Fire(EventManager&) override {
    BufferPool* p = pool;
    void* block = this;
    this->~BlockNode();
    p->FreeLocal(block);
  }
  void Discard() override {
    // Machine teardown with the block still in flight: no loops left to deliver it, so hand
    // it straight back to the slab (FreeAnywhere works from any context).
    BufferPool* p = pool;
    void* block = this;
    this->~BlockNode();
    p->ReturnToSlab(block);
  }
  BufferPool* pool;
};

// Storage dispose hook for pooled blocks: the last view died — snap the block back to its
// owner core instead of the slab. free_arg carries the root, origin_core the owner.
void BufferPool::PoolDispose(IOBuf::SharedStorage* storage) {
  static_cast<BufferPoolRoot*>(storage->free_arg)->Release(storage);
}

BufferPoolRoot::BufferPoolRoot(Runtime& runtime, std::size_t num_cores, Config config)
    : runtime_(runtime), config_(config) {
  Kassert(config_.block_bytes > IOBuf::kStorageHeaderBytes + config_.headroom,
          "BufferPoolRoot: block too small for header + headroom");
  reps_.reserve(num_cores);
  for (std::size_t i = 0; i < num_cores; ++i) {
    reps_.push_back(std::unique_ptr<BufferPool>(new BufferPool(*this, i)));
  }
}

BufferPoolRoot::BufferPoolRoot(Runtime& runtime, std::size_t num_cores)
    : BufferPoolRoot(runtime, num_cores, Config{}) {}

BufferPoolRoot::~BufferPoolRoot() = default;

BufferPool& BufferPoolRoot::RepFor(std::size_t machine_core) {
  Kassert(machine_core < reps_.size(), "BufferPoolRoot: bad core");
  return *reps_[machine_core];
}

void BufferPoolRoot::Install(Runtime& runtime, std::size_t num_cores) {
  Install(runtime, num_cores, Config{});
}

void BufferPoolRoot::Install(Runtime& runtime, std::size_t num_cores, Config config) {
  Kassert(runtime.TryGetSubsystem<GeneralPurposeAllocatorRoot>(
              Subsystem::kGeneralPurposeAllocator) != nullptr,
          "BufferPoolRoot::Install: memory subsystem must be installed first");
  auto root = std::make_shared<BufferPoolRoot>(runtime, num_cores, config);
  runtime.SetSubsystem(Subsystem::kBufferPool, root.get());
  runtime.Adopt(std::move(root));
}

void BufferPoolRoot::Release(IOBuf::SharedStorage* storage) {
  BufferPool& rep = RepFor(storage->origin_core);
  rep.NoteReleased();  // the block leaves the datapath here, whichever route it takes home
  if (HaveContext() && &CurrentRuntime() == &runtime_ &&
      CurrentContext().machine_core == storage->origin_core) {
    rep.FreeLocal(storage);
    return;
  }
  // A free routed home from another core/context: same meaning the magazine counter had.
  mem::stats().remote_frees.fetch_add(1, std::memory_order_relaxed);
  rep.FreeRemote(storage);
}

BufferPool* BufferPool::Local() {
  if (!HaveContext()) {
    return nullptr;
  }
  auto* root = CurrentRuntime().TryGetSubsystem<BufferPoolRoot>(Subsystem::kBufferPool);
  if (root == nullptr) {
    return nullptr;
  }
  return &root->RepFor(CurrentContext().machine_core);
}

BufferPool::BufferPool(BufferPoolRoot& root, std::size_t machine_core)
    : root_(root), machine_core_(machine_core), cap_(root.config().per_core_cap) {}

std::unique_ptr<IOBuf> BufferPool::Alloc() {
  Kassert(HaveContext() && &CurrentRuntime() == &root_.runtime() &&
              CurrentContext().machine_core == machine_core_,
          "BufferPool::Alloc: wrong core");
  const BufferPoolRoot::Config& cfg = root_.config();
  std::size_t data_bytes = cfg.block_bytes - IOBuf::kStorageHeaderBytes;
  void* block = nullptr;
  if (freelist_ != nullptr) {
    block = freelist_;
    freelist_ = freelist_->next;
    --free_count_;
    at_cap_miss_streak_ = 0;  // a hit breaks any "sustained misses" run (plain store: cheap)
    mem::stats().pool_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Remote frees arrive through the interconnect between events, so a dry freelist here
    // genuinely means no block is home yet — carve (or fall back), never lock.
    mem::stats().pool_misses.fetch_add(1, std::memory_order_relaxed);
    if (outstanding_.load(std::memory_order_relaxed) < cap_) {
      block = GeneralPurposeAllocator::Instance()->Alloc(cfg.block_bytes);
      if (block != nullptr) {
        outstanding_.fetch_add(1, std::memory_order_relaxed);
        // A carve is an IOBuf storage block taken from the slab — count it like every
        // other owned-storage allocation (the at-cap fallback below counts through
        // CreateReserve), so iobuf_allocs stays consistent across both miss paths.
        mem::stats().iobuf_allocs.fetch_add(1, std::memory_order_relaxed);
        mem::stats().iobuf_slab_allocs.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      NoteAtCapMiss();  // demand the cap throttled: feed the adaptive policy
    }
    if (block == nullptr) {
      // Pool at cap (or arena exhausted): an ordinary slab-backed buffer — it returns to
      // the slab, not the pool, when released. No failure surface.
      MaybeQueueBoundaryHook();
      return IOBuf::CreateReserve(data_bytes, cfg.headroom);
    }
  }
  MaybeQueueBoundaryHook();
  NoteCheckedOut();
  auto* storage = new (block) IOBuf::SharedStorage;
  storage->buffer = static_cast<std::uint8_t*>(block) + IOBuf::kStorageHeaderBytes;
  storage->dispose = &PoolDispose;
  storage->free_fn = nullptr;
  storage->free_arg = &root_;
  storage->origin_core = static_cast<std::uint32_t>(machine_core_);
  return std::unique_ptr<IOBuf>(
      new IOBuf(storage->buffer, data_bytes, storage->buffer + cfg.headroom, 0, storage));
}

void BufferPool::NoteCheckedOut() {
  std::size_t now = in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Per-core high-water mark: only this core checks blocks out, so a plain load/store pair
  // cannot lose an update.
  if (now > in_use_hwm_.load(std::memory_order_relaxed)) {
    in_use_hwm_.store(now, std::memory_order_relaxed);
  }
  // Cost note: the global occupancy tick is one relaxed RMW beside the pool_hits/misses
  // tick every Alloc already pays on this same stats line, and the hwm CAS only runs while
  // a new process-wide peak is being set (ramp/burst) — steady state takes the cheap load.
  mem::Stats& stats = mem::stats();
  std::uint64_t global = stats.pool_in_use.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t hwm = stats.pool_in_use_hwm.load(std::memory_order_relaxed);
  while (global > hwm &&
         !stats.pool_in_use_hwm.compare_exchange_weak(hwm, global,
                                                      std::memory_order_relaxed)) {
  }
}

void BufferPool::NoteReleased() {
  in_use_.fetch_sub(1, std::memory_order_relaxed);
  mem::stats().pool_in_use.fetch_sub(1, std::memory_order_relaxed);
}

void BufferPool::FreeLocal(void* block) {
  if (free_count_ >= cap_) {
    // The pool is full (or the cap decayed below what is coming home): hand the block back
    // to the slab path.
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    GeneralPurposeAllocator::Instance()->Free(block);
    return;
  }
  auto* link = static_cast<FreeLink*>(block);
  link->next = freelist_;
  freelist_ = link;
  ++free_count_;
  // Releases arm the boundary hook too: after a burst, a core that only sees its buffers
  // trickle home (no further Allocs) still gets decay ticks, so a grown cap shrinks back
  // and surplus blocks return to the slab. (A core with no pool activity at all keeps its
  // cached blocks — there is no event to hang the policy on.)
  MaybeQueueBoundaryHook();
}

void BufferPool::FreeRemote(void* block) {
  auto* em_root =
      root_.runtime().TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
  if (em_root == nullptr || machine_core_ >= em_root->interconnect().num_cores()) {
    // No event plane to deliver through (bare-root tests, late teardown): retire the block
    // to the slab instead of recycling it.
    ReturnToSlab(block);
    return;
  }
  // The dead block becomes its own message: one CAS publishes it onto the owner core's
  // exchange list; the owner's loop fires it back onto the freelist between events.
  static_assert(sizeof(BlockNode) <= IOBuf::kStorageHeaderBytes,
                "BlockNode must fit in the dead storage header");
  em_root->interconnect().Push(machine_core_, new (block) BlockNode(this));
}

void BufferPool::ReturnToSlab(void* block) {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  GeneralPurposeAllocatorRoot* owner = mem::FindOwningRoot(block);
  Kassert(owner != nullptr, "BufferPool: pooled block outside any arena");
  owner->FreeAnywhere(block);
}

void BufferPool::MaybeQueueBoundaryHook() {
  if (hook_queued_) {
    return;
  }
  hook_queued_ = true;
  // Give the adaptive cap its decay tick at this event's boundary. (Remote frees no longer
  // need a drain here — the interconnect delivers them to FreeLocal between events.)
  event::Local().QueueEndOfEvent([this] {
    hook_queued_ = false;
    MaybeDecayCap();
  });
}

// --- Adaptive cap (ROADMAP "descriptor-cache sizing") -----------------------------------------
//
// The cap self-tunes on the two signals PR 4's telemetry introduced: at-cap misses (the pool
// bounced real demand to the slab) and the in_use high-water mark (how much demand there
// actually was). Growth is demand-driven and bounded; decay is time-driven (event
// boundaries, the machine's natural clock) and returns surplus blocks to the slab so an
// idle core's pool genuinely shrinks.

void BufferPool::NoteAtCapMiss() {
  pressured_this_event_ = true;
  quiet_events_ = 0;
  const BufferPoolRoot::Config& cfg = root_.config();
  if (++at_cap_miss_streak_ < cfg.grow_miss_streak || cap_ >= cfg.per_core_cap_max) {
    return;
  }
  at_cap_miss_streak_ = 0;
  // Grow toward observed demand: at least double, and never below the high-water mark the
  // occupancy telemetry recorded (in_use_hwm includes the blocks whose absence caused
  // these misses only once the cap admits them — hence the geometric floor).
  std::size_t target = std::max(cap_ * 2, in_use_hwm());
  cap_ = std::min(cfg.per_core_cap_max, target);
  mem::stats().pool_cap_grows.fetch_add(1, std::memory_order_relaxed);
}

void BufferPool::MaybeDecayCap() {
  const BufferPoolRoot::Config& cfg = root_.config();
  if (pressured_this_event_) {
    pressured_this_event_ = false;
    quiet_events_ = 0;
    return;
  }
  if (cap_ <= cfg.per_core_cap) {
    return;  // already at the floor
  }
  if (++quiet_events_ < cfg.decay_quiet_events) {
    return;
  }
  quiet_events_ = 0;
  // Halve the excess above the floor (reaching the floor itself on the last step), then
  // hand surplus recycled blocks back to the slab so the decay frees real memory.
  std::size_t excess = cap_ - cfg.per_core_cap;
  cap_ = cfg.per_core_cap + excess / 2;
  mem::stats().pool_cap_decays.fetch_add(1, std::memory_order_relaxed);
  TrimFreelistToCap();
}

void BufferPool::TrimFreelistToCap() {
  while (outstanding_.load(std::memory_order_relaxed) > cap_ && freelist_ != nullptr) {
    FreeLink* link = freelist_;
    freelist_ = link->next;
    --free_count_;
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    GeneralPurposeAllocator::Instance()->Free(link);
  }
}

}  // namespace ebbrt
