// PageAllocator — the lowest-level allocator: power-of-two pages from per-NUMA-node buddy
// allocators (§3.4: "Our default implementation uses per-numa-node buddy-allocators").
//
// Defined as an Ebb so it can be replaced wholesale: each core's EbbRef dereference resolves
// to its NUMA node's representative. Page allocation is the slow path under the slab caches,
// so a per-node spinlock is acceptable; the per-core fast paths above never reach it.
#ifndef EBBRT_SRC_MEM_PAGE_ALLOCATOR_H_
#define EBBRT_SRC_MEM_PAGE_ALLOCATOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/core/ebb_ref.h"
#include "src/core/runtime.h"
#include "src/mem/phys_arena.h"
#include "src/platform/spinlock.h"

namespace ebbrt {

class PageAllocator;

class PageAllocatorRoot {
 public:
  // Builds one buddy representative per NUMA node over `arena`. `cores_per_node` maps a
  // machine core to its node (core / cores_per_node).
  PageAllocatorRoot(PhysArena& arena, std::size_t cores_per_node);
  ~PageAllocatorRoot();

  PageAllocator& RepForCore(std::size_t machine_core);
  PageAllocator& RepForNode(std::size_t node);
  PhysArena& arena() { return arena_; }
  std::size_t nodes() const { return reps_.size(); }

 private:
  PhysArena& arena_;
  std::size_t cores_per_node_;
  std::vector<std::unique_ptr<PageAllocator>> reps_;
};

// One representative per NUMA node: a binary-buddy allocator over the node's pfn range.
class PageAllocator {
 public:
  static EbbRef<PageAllocator> Instance() { return EbbRef<PageAllocator>(kPageAllocatorId); }
  static PageAllocator& HandleFault(EbbId id);

  PageAllocator(PhysArena& arena, std::size_t node);

  // Allocates 2^order contiguous pages; nullptr when the node is exhausted.
  void* AllocPages(std::size_t order);
  // Frees a block previously returned by AllocPages (order recorded in the page info).
  void FreePages(void* addr);

  std::size_t node() const { return node_; }
  std::size_t free_pages() const { return free_pages_; }
  PhysArena& arena() { return arena_; }

 private:
  Pfn BuddyOf(Pfn pfn, std::size_t order) const {
    return first_pfn_ + ((pfn - first_pfn_) ^ (std::size_t{1} << order));
  }
  void PushFree(Pfn pfn, std::size_t order);
  void RemoveFree(Pfn pfn, std::size_t order);
  Pfn PopFree(std::size_t order);

  // Intrusive free list node embedded in the first page of each free block.
  struct FreeBlock {
    FreeBlock* next;
    FreeBlock* prev;
  };

  PhysArena& arena_;
  std::size_t node_;
  Pfn first_pfn_;
  std::size_t num_pages_;
  Spinlock mu_;
  std::array<FreeBlock*, kMaxOrder + 1> free_lists_ = {};
  std::size_t free_pages_ = 0;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_MEM_PAGE_ALLOCATOR_H_
