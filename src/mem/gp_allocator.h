// GeneralPurposeAllocator — the malloc-equivalent (§3.4).
//
// "The general purpose memory allocator ... is implemented using many slab allocators, each
// allocating objects of different sizes. To serve a request, the slab allocator with the
// closest size greater or equal to the requested size is invoked. Allocations larger than the
// largest slab allocator size instead allocate a virtual memory region and map in pages from
// the page allocator."
//
// Each size class is its own SlabCache Ebb, so any class can be replaced independently. The
// templated AllocFor<N>() mirrors the property the paper observed with compile-time-known
// malloc sizes: the class index folds to a constant and the call compiles down to the slab
// fast path directly.
#ifndef EBBRT_SRC_MEM_GP_ALLOCATOR_H_
#define EBBRT_SRC_MEM_GP_ALLOCATOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "src/core/ebb_id.h"
#include "src/core/ebb_ref.h"
#include "src/core/runtime.h"
#include "src/mem/slab_allocator.h"

namespace ebbrt {

namespace gp_internal {
inline constexpr std::array<std::size_t, 14> kSizeClasses = {
    8, 16, 32, 48, 64, 96, 128, 192, 256, 512, 1024, 2048, 3072, 4096};
inline constexpr std::size_t kMaxSlabSize = kSizeClasses.back();

constexpr std::size_t ClassFor(std::size_t size) {
  for (std::size_t i = 0; i < kSizeClasses.size(); ++i) {
    if (size <= kSizeClasses[i]) {
      return i;
    }
  }
  return kSizeClasses.size();  // large
}
}  // namespace gp_internal

class GeneralPurposeAllocator;

class GeneralPurposeAllocatorRoot {
 public:
  GeneralPurposeAllocatorRoot(PageAllocatorRoot& pages, std::size_t num_cores,
                              Runtime* runtime = nullptr);
  ~GeneralPurposeAllocatorRoot();

  GeneralPurposeAllocator& RepFor(std::size_t machine_core);
  SlabCacheRoot& class_root(std::size_t idx) { return *class_roots_[idx]; }
  PageAllocatorRoot& pages() { return pages_; }
  std::size_t num_cores() const { return num_cores_; }
  Runtime* runtime() const { return runtime_; }

  // Frees `p` (which must belong to this machine's arena) from ANY execution context. When
  // the caller is running as a core of this machine, this is the normal per-core slab/page
  // fast path; otherwise slab objects are pushed to the owning node's depot and large blocks
  // to the node buddy — both spinlock-protected, so a world action or a foreign machine can
  // safely release buffers it was handed (counted in mem::stats().remote_frees).
  void FreeAnywhere(void* p);

 private:
  PageAllocatorRoot& pages_;
  std::size_t num_cores_;
  Runtime* runtime_;  // machine this root is installed on (nullptr for bare test roots)
  std::array<std::unique_ptr<SlabCacheRoot>, gp_internal::kSizeClasses.size()> class_roots_;
  std::vector<std::unique_ptr<GeneralPurposeAllocator>> reps_;
  Spinlock rep_mu_;
};

class alignas(kCacheLineSize) GeneralPurposeAllocator {
 public:
  static EbbRef<GeneralPurposeAllocator> Instance() {
    return EbbRef<GeneralPurposeAllocator>(kGeneralPurposeAllocatorId);
  }
  static GeneralPurposeAllocator& HandleFault(EbbId id);

  GeneralPurposeAllocator(GeneralPurposeAllocatorRoot& root, std::size_t machine_core);

  // malloc/free equivalents. Alloc returns nullptr on exhaustion. All returned memory lives
  // in the machine's identity-mapped arena (zero-copy DMA-safe per the paper's argument).
  void* Alloc(std::size_t size);
  void Free(void* p);

  // Compile-time-size fast path: the size-class computation constant-folds, leaving only the
  // per-core slab freelist pop (what the paper saw the compiler do to sized malloc calls).
  template <std::size_t N>
  void* AllocFor() {
    constexpr std::size_t cls = gp_internal::ClassFor(N);
    if constexpr (cls < gp_internal::kSizeClasses.size()) {
      return class_reps_[cls]->Alloc();
    } else {
      return AllocLarge(N);
    }
  }

 private:
  void* AllocLarge(std::size_t size);
  void FreeLarge(void* p, PageInfo& info);

  GeneralPurposeAllocatorRoot& root_;
  std::size_t machine_core_;
  // Direct per-class rep pointers: one EbbRef-equivalent dereference was already paid when the
  // GP rep was constructed; per-call class dispatch is a single indexed load.
  std::array<SlabCache*, gp_internal::kSizeClasses.size()> class_reps_;
};

namespace mem {
// Installs the memory subsystem (arena + page allocator + GP allocator Ebbs) on a machine.
// The installed objects are adopted by the runtime: they die with the machine, and the GP
// root unregisters itself from the global arena registry (see FindOwningRoot).
struct Config {
  std::size_t arena_bytes = 256ull << 20;  // 256 MiB
  std::size_t numa_nodes = 1;
  std::size_t cores_per_node = 0;  // 0 => cores / nodes
};
void Install(Runtime& runtime, std::size_t num_cores, Config config = {});

// Convenience facades over the current core's representative.
inline void* Alloc(std::size_t size) { return GeneralPurposeAllocator::Instance()->Alloc(size); }
inline void Free(void* p) { GeneralPurposeAllocator::Instance()->Free(p); }

// Variable-size carve helper for datapath objects that outlive the allocating event (item
// blocks, IOBuf storage): carves from the current core's GP allocator when a machine context
// is installed (slab/large-page fast path, DMA-safe arena memory), and falls back to
// std::malloc otherwise (bare unit tests, world actions). `slab_backed`, when non-null, is
// set to whether the arena path served the block.
void* AllocRouted(std::size_t size, bool* slab_backed = nullptr);

// Release for AllocRouted blocks, callable from ANY context: resolves the owning arena via
// FindOwningRoot and routes the block home (per-core fast path on the owning machine,
// spinlocked depot/buddy remote free otherwise — counted in stats().remote_frees), or
// std::free for heap-fallback blocks. This is the "allocate on the owner core, free
// wherever the last view dies" discipline in one call.
void FreeRouted(void* p);

// Resolves a pointer to the GP root whose arena contains it (nullptr for ordinary heap
// memory). Backed by a small append-on-install registry of live arenas, so buffer release
// paths (IOBuf storage, pooled frames) can route a block home from any context — the piece
// that makes "allocate on the owner core, free wherever the last view dies" safe.
GeneralPurposeAllocatorRoot* FindOwningRoot(const void* p);

// Datapath allocation counters (process-global; benches snapshot deltas around a run).
struct Stats {
  std::atomic<std::uint64_t> iobuf_allocs{0};      // IOBuf owned-storage blocks allocated
  std::atomic<std::uint64_t> iobuf_slab_allocs{0}; // ...served by the per-core GP/slab path
  std::atomic<std::uint64_t> heap_fallback_allocs{0};  // std::malloc fallbacks on IOBuf paths
                                                       // (no machine context, or arena full)
  std::atomic<std::uint64_t> pool_hits{0};     // BufferPool allocs served from recycled blocks
  std::atomic<std::uint64_t> pool_misses{0};   // ...that had to carve from the slab path
  std::atomic<std::uint64_t> remote_frees{0};  // frees routed home via magazine/depot locks

  // Every ::operator new in the process (counted by the replacement operators in
  // heap_count.cc). The IOBuf-path counters above only see the allocations the datapath
  // routes through mem::, which is exactly why the old bench gates missed the item plane's
  // make_shared/std::string churn — this counter sees EVERYTHING the generic heap serves,
  // so "zero-alloc" claims are measured against the whole process, not a subsystem.
  std::atomic<std::uint64_t> generic_heap_allocs{0};

  // --- BufferPool occupancy (descriptor-cache sizing input) --------------------------------
  // Pooled blocks currently checked out of any pool (in flight on a datapath), and the
  // high-water mark that value has reached. The per-core view lives on each BufferPool rep
  // (in_use()/in_use_hwm()); these are the process-wide aggregates an adaptive sizing policy
  // would watch: hwm >> steady occupancy means the static per-core cap is oversized, hwm
  // pinned at the cap means it is throttling bursts.
  std::atomic<std::uint64_t> pool_in_use{0};
  std::atomic<std::uint64_t> pool_in_use_hwm{0};
  // Adaptive-cap transitions (the policy that consumes the occupancy signal above): caps
  // grown after sustained at-cap misses, and caps decayed back toward the floor after
  // pressure-free event boundaries.
  std::atomic<std::uint64_t> pool_cap_grows{0};
  std::atomic<std::uint64_t> pool_cap_decays{0};
};
Stats& stats();
}  // namespace mem

}  // namespace ebbrt

#endif  // EBBRT_SRC_MEM_GP_ALLOCATOR_H_
