// VMemRegion — virtual memory regions with application-provided fault handlers (§3.4):
// "Applications can allocate virtual regions and provide their own page fault handler which is
// invoked on faults to that region. This allows applications to implement arbitrary paging
// policies."
//
// Regions are mmap'd PROT_NONE; a process-wide SIGSEGV handler routes faults inside a region
// to its handler (which typically MapPage()s and returns). MapAll() pre-maps the whole region
// — the "aggressive mapping" EbbRT applies to V8's heap that eliminates its page faults (the
// paper's explanation for the Splay benchmark win, Figure 7).
#ifndef EBBRT_SRC_MEM_VMEM_H_
#define EBBRT_SRC_MEM_VMEM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace ebbrt {

class VMemRegion {
 public:
  // Handler invoked on the faulting thread with the faulting address. It must make the
  // address accessible (e.g. MapPage) or the fault repeats.
  using FaultHandler = std::function<void(VMemRegion&, void* addr)>;

  ~VMemRegion();
  VMemRegion(const VMemRegion&) = delete;
  VMemRegion& operator=(const VMemRegion&) = delete;

  void* base() const { return base_; }
  std::size_t size() const { return size_; }
  bool Contains(const void* addr) const {
    auto* p = static_cast<const std::uint8_t*>(addr);
    return p >= static_cast<std::uint8_t*>(base_) &&
           p < static_cast<std::uint8_t*>(base_) + size_;
  }

  // Makes the page containing `addr` readable/writable.
  void MapPage(void* addr);
  // Pre-maps (and optionally pre-touches) the entire region: no faults will ever occur.
  void MapAll(bool touch = false);

  std::uint64_t fault_count() const { return faults_.load(std::memory_order_relaxed); }

 private:
  friend class VMemRegistry;
  VMemRegion(void* base, std::size_t size, FaultHandler handler);

  void* base_;
  std::size_t size_;
  FaultHandler handler_;
  std::atomic<std::uint64_t> faults_{0};
};

namespace vmem {
// Allocates a fault-handled region of `bytes` (rounded up to pages). The default handler maps
// the faulting page (demand paging). The region stays registered until Release().
VMemRegion& Allocate(std::size_t bytes, VMemRegion::FaultHandler handler = nullptr);
void Release(VMemRegion& region);
}  // namespace vmem

}  // namespace ebbrt

#endif  // EBBRT_SRC_MEM_VMEM_H_
