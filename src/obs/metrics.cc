#include "src/obs/metrics.h"

#include <cstdio>
#include <utility>

#include "src/core/multicore_ebb.h"
#include "src/dist/messenger.h"
#include "src/event/event_manager.h"
#include "src/mem/gp_allocator.h"
#include "src/net/network_manager.h"

namespace ebbrt {
namespace obs {

// --- MetricRegistry --------------------------------------------------------------------------

MetricRegistry& MetricRegistry::HandleFault(EbbId id) {
  if (void* cached = ebb_internal::HostedLookup(id)) {
    return *static_cast<MetricRegistry*>(cached);
  }
  Context& ctx = CurrentContext();
  ObsRoot& root = ObsRoot::For(*ctx.runtime);
  MetricRegistry& rep = root.RepFor(ctx.machine_core);
  Runtime::CacheRep(id, &rep);
  return rep;
}

MetricRegistry::MetricRegistry(ObsRoot& root, std::size_t machine_core)
    : root_(root), machine_core_(machine_core),
      span_ring_(new SpanRecord[kSpanRingCap]) {}

// Trace ids are deterministic under SimWorld: (runtime, core, per-core sequence). Runtime
// ids are process-unique, so traces from different machines in one testbed never collide.
std::uint64_t MetricRegistry::NewTraceId() {
  ++trace_seq_;
  return ((static_cast<std::uint64_t>(root_.runtime().id() + 1) & 0xffffff) << 40) |
         ((static_cast<std::uint64_t>(machine_core_) & 0xff) << 32) | trace_seq_;
}

// Span ids carry (runtime, core, sequence) too: a trace's spans are recorded on several
// machines, and parent links must stay unambiguous when the rings are merged.
std::uint32_t MetricRegistry::NewSpanId() {
  span_seq_ = (span_seq_ + 1) & 0x000fffff;  // 20-bit per-core sequence
  return ((static_cast<std::uint32_t>(root_.runtime().id() + 1) & 0xff) << 24) |
         ((static_cast<std::uint32_t>(machine_core_) & 0xf) << 20) | span_seq_;
}

void MetricRegistry::RecordSpan(const SpanRecord& span) {
  std::uint64_t slot = span_next_.fetch_add(1, std::memory_order_relaxed);
  span_ring_[slot % kSpanRingCap] = span;
}

// --- ObsRoot ---------------------------------------------------------------------------------

ObsRoot& ObsRoot::For(Runtime& runtime) {
  auto* root = runtime.TryGetSubsystem<ObsRoot>(Subsystem::kObservability);
  if (root == nullptr) {
    auto owned = std::make_shared<ObsRoot>(runtime);
    root = owned.get();
    runtime.SetSubsystem(Subsystem::kObservability, root);
    runtime.InstallRoot(kMetricRegistryId, root);
    runtime.Adopt(std::move(owned));
  }
  return *root;
}

ObsRoot::ObsRoot(Runtime& runtime) : runtime_(runtime) {
  reps_.resize(runtime.num_cores());
  // Hand the event plane its level switch: EventManager records its histograms only while
  // this machine's plane says metrics are on.
  if (auto* em_root =
          runtime_.TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager)) {
    for (std::size_t c = 0; c < em_root->num_cores(); ++c) {
      em_root->RepFor(c).SetObsLevel(&level_);
    }
  }
  InstallDefaultCollectors();
}

ObsRoot::~ObsRoot() {
  // Detach the level switch; the EventManagerRoot outlives this object (adopted earlier),
  // but its reps must not read a freed atomic if anything dispatches during teardown.
  if (auto* em_root =
          runtime_.TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager)) {
    for (std::size_t c = 0; c < em_root->num_cores(); ++c) {
      em_root->RepFor(c).SetObsLevel(nullptr);
    }
  }
}

MetricRegistry& ObsRoot::RepFor(std::size_t machine_core) {
  Kassert(machine_core < reps_.size(), "ObsRoot::RepFor: bad core");
  if (MetricRegistry* rep = reps_[machine_core].get()) {
    return *rep;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (reps_[machine_core] == nullptr) {
    reps_[machine_core] = std::make_unique<MetricRegistry>(*this, machine_core);
  }
  return *reps_[machine_core];
}

namespace {
MetricId RegisterName(std::vector<std::string>* names, const std::string& name,
                      std::size_t cap, const char* what) {
  for (std::size_t i = 0; i < names->size(); ++i) {
    if ((*names)[i] == name) {
      return static_cast<MetricId>(i);
    }
  }
  (void)what;
  Kassert(names->size() < cap, "ObsRoot: metric table full");
  names->push_back(name);
  return static_cast<MetricId>(names->size() - 1);
}
}  // namespace

MetricId ObsRoot::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterName(&counter_names_, name, MetricRegistry::kMaxCounters, "counter");
}

MetricId ObsRoot::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterName(&gauge_names_, name, MetricRegistry::kMaxGauges, "gauge");
}

MetricId ObsRoot::RegisterHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterName(&hist_names_, name, MetricRegistry::kMaxHistograms, "histogram");
}

std::uint64_t ObsRoot::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t handle = next_collector_++;
  collectors_.emplace_back(handle, std::move(collector));
  return handle;
}

std::uint64_t ObsRoot::AddHistCollector(HistCollector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t handle = next_collector_++;
  hist_collectors_.emplace_back(handle, std::move(collector));
  return handle;
}

void ObsRoot::RemoveCollector(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == handle) {
      collectors_.erase(it);
      return;
    }
  }
  for (auto it = hist_collectors_.begin(); it != hist_collectors_.end(); ++it) {
    if (it->first == handle) {
      hist_collectors_.erase(it);
      return;
    }
  }
}

// Accumulates one core's registered slots into `out`. The first core's visit lays the
// samples out (names from the registration tables); later cores add into the same entries.
// Reads are relaxed loads of that core's arrays — safe from the owner core (SnapshotAsync)
// or any core (SnapshotNow).
void ObsRoot::SampleCore(std::size_t machine_core, MetricsSnapshot* out) {
  MetricRegistry* rep = reps_[machine_core].get();
  std::vector<std::string> counters, gauges, hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters = counter_names_;
    gauges = gauge_names_;
    hists = hist_names_;
  }
  if (out->samples.empty() && !counters.empty()) {
    out->samples.reserve(counters.size());
    for (const std::string& name : counters) {
      out->samples.emplace_back(name, 0.0);
    }
  }
  if (out->hists.empty() && !hists.empty()) {
    out->hists.resize(hists.size());
    for (std::size_t i = 0; i < hists.size(); ++i) {
      out->hists[i].first = hists[i];
    }
  }
  if (rep == nullptr) {
    return;  // core never recorded anything; zero contribution
  }
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out->samples[i].second += static_cast<double>(
        rep->counters_[i].load(std::memory_order_relaxed));
  }
  // Gauges are per-core series (the autoscaler wants the imbalance, not just the sum).
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out->samples.emplace_back(
        gauges[i] + "{core=\"" + std::to_string(machine_core) + "\"}",
        static_cast<double>(rep->gauges_[i].load(std::memory_order_relaxed)));
  }
  for (std::size_t i = 0; i < hists.size(); ++i) {
    rep->hists_[i].Sample(&out->hists[i].second);
  }
}

// Appends collector output and plane self-metrics; runs once per snapshot, after every
// core's slots are in.
void ObsRoot::MergeAndFinish(MetricsSnapshot* out) {
  std::vector<std::pair<std::uint64_t, Collector>> collectors;
  std::vector<std::pair<std::uint64_t, HistCollector>> hist_collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
    hist_collectors = hist_collectors_;
  }
  for (auto& entry : collectors) {
    entry.second(out->samples);
  }
  for (auto& entry : hist_collectors) {
    entry.second(out->hists);
  }
  std::uint64_t spans = 0;
  for (const auto& rep : reps_) {
    if (rep != nullptr) {
      spans += rep->spans_recorded();
    }
  }
  out->samples.emplace_back("obs_spans_recorded", static_cast<double>(spans));
  out->samples.emplace_back("obs_level", static_cast<double>(level_.load()));
}

ObsRoot::MetricsSnapshot ObsRoot::SnapshotNow() {
  MetricsSnapshot out;
  for (std::size_t c = 0; c < reps_.size(); ++c) {
    SampleCore(c, &out);
  }
  MergeAndFinish(&out);
  return out;
}

void ObsRoot::SnapshotAsync(std::function<void(MetricsSnapshot)> done) {
  struct FanIn {
    std::vector<MetricsSnapshot> partials;
    std::atomic<std::size_t> remaining;
  };
  std::size_t cores = reps_.size();
  std::size_t origin = CurrentContext().machine_core;
  auto fan = std::make_shared<FanIn>();
  fan->partials.resize(cores);
  fan->remaining.store(cores, std::memory_order_relaxed);
  auto shared_done = std::make_shared<std::function<void(MetricsSnapshot)>>(std::move(done));
  for (std::size_t c = 0; c < cores; ++c) {
    // One slab-carved interconnect node per core; each core samples ITS OWN slots at an
    // event boundary, the last one to finish merges and hands the result back to the
    // origin core. No mutex anywhere on this path.
    event::Local().SpawnRemote(
        [this, fan, shared_done, c, origin] {
          SampleCore(c, &fan->partials[c]);
          if (fan->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            event::Local().SpawnRemote(
                [this, fan, shared_done] {
                  MetricsSnapshot merged = std::move(fan->partials[0]);
                  for (std::size_t i = 1; i < fan->partials.size(); ++i) {
                    MetricsSnapshot& part = fan->partials[i];
                    // Counter/hist entries share layout across partials; gauge samples
                    // (appended per core) just concatenate.
                    std::size_t named = 0;
                    {
                      std::lock_guard<std::mutex> lock(mu_);
                      named = counter_names_.size();
                    }
                    for (std::size_t s = 0; s < part.samples.size(); ++s) {
                      if (s < named && s < merged.samples.size()) {
                        merged.samples[s].second += part.samples[s].second;
                      } else {
                        merged.samples.push_back(std::move(part.samples[s]));
                      }
                    }
                    for (std::size_t h = 0; h < part.hists.size(); ++h) {
                      if (h < merged.hists.size()) {
                        merged.hists[h].second.Merge(part.hists[h].second);
                      } else {
                        merged.hists.push_back(std::move(part.hists[h]));
                      }
                    }
                  }
                  MergeAndFinish(&merged);
                  (*shared_done)(std::move(merged));
                },
                origin);
          }
        },
        c);
  }
}

std::string ObsRoot::RenderText(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  char line[256];
  for (const auto& sample : snapshot.samples) {
    double v = sample.second;
    if (v == static_cast<double>(static_cast<long long>(v))) {
      std::snprintf(line, sizeof(line), "%s %lld\n", sample.first.c_str(),
                    static_cast<long long>(v));
    } else {
      std::snprintf(line, sizeof(line), "%s %.6f\n", sample.first.c_str(), v);
    }
    out += line;
  }
  for (const auto& hist : snapshot.hists) {
    const Histogram::Snapshot& s = hist.second;
    const char* name = hist.first.c_str();
    std::snprintf(line, sizeof(line), "%s_count %llu\n%s_sum %llu\n", name,
                  static_cast<unsigned long long>(s.count), name,
                  static_cast<unsigned long long>(s.sum));
    out += line;
    std::snprintf(line, sizeof(line),
                  "%s{q=\"0.5\"} %llu\n%s{q=\"0.99\"} %llu\n%s{q=\"0.999\"} %llu\n", name,
                  static_cast<unsigned long long>(s.P50()), name,
                  static_cast<unsigned long long>(s.P99()), name,
                  static_cast<unsigned long long>(s.P999()));
    out += line;
  }
  return out;
}

std::vector<SpanRecord> ObsRoot::Spans() const {
  std::vector<SpanRecord> out;
  for (const auto& rep : reps_) {
    if (rep == nullptr) {
      continue;
    }
    std::uint64_t total = rep->span_next_.load(std::memory_order_relaxed);
    std::uint64_t cap = MetricRegistry::kSpanRingCap;
    std::uint64_t first = total > cap ? total - cap : 0;
    for (std::uint64_t i = first; i < total; ++i) {
      out.push_back(rep->span_ring_[i % cap]);
    }
  }
  return out;
}

void ObsRoot::ClearSpans() {
  for (const auto& rep : reps_) {
    if (rep != nullptr) {
      rep->span_next_.store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t ObsRoot::NowNs() {
  auto* em_root = runtime_.TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
  return em_root == nullptr ? 0 : em_root->executor().Now();
}

ObsRoot::TraceScope::TraceScope(ObsRoot& root, std::uint64_t trace_id,
                                std::uint32_t span_id)
    : rep_(root.RepFor(CurrentContext().machine_core)), saved_(rep_.ctx_) {
  rep_.ctx_.trace_id = trace_id;
  rep_.ctx_.span_id = span_id;
}

ObsRoot::TraceScope::~TraceScope() { rep_.ctx_ = saved_; }

// --- Default collectors: the legacy stats() structs, re-homed --------------------------------
//
// Pull-only: nothing here touches a hot path. Each lambda re-resolves its subsystem at
// sample time (TryGetSubsystem), so collectors installed before a subsystem exists — or
// surviving after one died at teardown — just skip it.
void ObsRoot::InstallDefaultCollectors() {
  Runtime* rt = &runtime_;

  AddCollector([rt](std::vector<Sample>& out) {
    auto* em_root = rt->TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
    if (em_root == nullptr) {
      return;
    }
    EventManager::Stats total;
    for (std::size_t c = 0; c < em_root->num_cores(); ++c) {
      EventManager& em = em_root->RepFor(c);
      EventManager::Stats s = em.stats();
      total.interrupts += s.interrupts;
      total.synthetic += s.synthetic;
      total.idle_passes += s.idle_passes;
      total.timers += s.timers;
      total.end_of_event += s.end_of_event;
      total.xcore_spawns += s.xcore_spawns;
      total.xcore_batches += s.xcore_batches;
      total.xcore_pushes += s.xcore_pushes;
      total.xcore_wakeups += s.xcore_wakeups;
      total.control_locks += s.control_locks;
      out.emplace_back("event_run_queue_depth{core=\"" + std::to_string(c) + "\"}",
                       static_cast<double>(em.run_queue_depth()));
    }
    out.emplace_back("event_interrupts", static_cast<double>(total.interrupts));
    out.emplace_back("event_synthetic", static_cast<double>(total.synthetic));
    out.emplace_back("event_idle_passes", static_cast<double>(total.idle_passes));
    out.emplace_back("event_timers", static_cast<double>(total.timers));
    out.emplace_back("event_end_of_event_hooks", static_cast<double>(total.end_of_event));
    out.emplace_back("event_xcore_spawns", static_cast<double>(total.xcore_spawns));
    out.emplace_back("event_xcore_batches", static_cast<double>(total.xcore_batches));
    out.emplace_back("event_xcore_pushes", static_cast<double>(total.xcore_pushes));
    out.emplace_back("event_xcore_wakeups", static_cast<double>(total.xcore_wakeups));
    out.emplace_back("event_control_locks", static_cast<double>(total.control_locks));
  });

  AddHistCollector([rt](std::vector<HistSample>& out) {
    auto* em_root = rt->TryGetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
    if (em_root == nullptr) {
      return;
    }
    Histogram::Snapshot handler, hook, batch, residency;
    for (std::size_t c = 0; c < em_root->num_cores(); ++c) {
      EventManager& em = em_root->RepFor(c);
      em.handler_latency_hist().Sample(&handler);
      em.end_of_event_hook_hist().Sample(&hook);
      em.xcore_batch_size_hist().Sample(&batch);
      em.xcore_residency_hist().Sample(&residency);
    }
    out.emplace_back("event_handler_latency_ns", handler);
    out.emplace_back("event_end_of_event_hook_ns", hook);
    out.emplace_back("interconnect_batch_size", batch);
    out.emplace_back("interconnect_queue_residency_ns", residency);
  });

  AddCollector([](std::vector<Sample>& out) {
    // Process-global memory-plane counters (benches snapshot deltas; the absolute values
    // are still the BufferPool occupancy signal the autoscaler wants).
    mem::Stats& m = mem::stats();
    auto get = [](const std::atomic<std::uint64_t>& a) {
      return static_cast<double>(a.load(std::memory_order_relaxed));
    };
    out.emplace_back("mem_iobuf_allocs", get(m.iobuf_allocs));
    out.emplace_back("mem_iobuf_slab_allocs", get(m.iobuf_slab_allocs));
    out.emplace_back("mem_heap_fallback_allocs", get(m.heap_fallback_allocs));
    out.emplace_back("mem_pool_hits", get(m.pool_hits));
    out.emplace_back("mem_pool_misses", get(m.pool_misses));
    out.emplace_back("mem_pool_remote_frees", get(m.remote_frees));
    out.emplace_back("mem_pool_in_use", get(m.pool_in_use));
    out.emplace_back("mem_pool_in_use_hwm", get(m.pool_in_use_hwm));
    out.emplace_back("mem_pool_cap_grows", get(m.pool_cap_grows));
    out.emplace_back("mem_pool_cap_decays", get(m.pool_cap_decays));
  });

  AddCollector([rt](std::vector<Sample>& out) {
    auto* net = rt->TryGetSubsystem<NetworkManager>(Subsystem::kNetworkManager);
    if (net == nullptr) {
      return;
    }
    const NetworkManager::Stats& s = net->stats();
    auto get = [](const std::atomic<std::uint64_t>& a) {
      return static_cast<double>(a.load(std::memory_order_relaxed));
    };
    out.emplace_back("net_ip_rx", get(s.ip_rx));
    out.emplace_back("net_tcp_rx", get(s.tcp_rx));
    out.emplace_back("net_tcp_tx_segments", get(s.tcp_tx_segments));
    out.emplace_back("net_tcp_tx_data_segments", get(s.tcp_tx_data_segments));
    out.emplace_back("net_tcp_tx_payload_bytes", get(s.tcp_tx_payload_bytes));
    out.emplace_back("net_sends_coalesced", get(s.sends_coalesced));
    out.emplace_back("net_cork_flushes", get(s.cork_flushes));
    out.emplace_back("net_corked_drops", get(s.corked_drops));
    out.emplace_back("net_checksum_drops", get(s.checksum_drops));
  });

  AddCollector([rt](std::vector<Sample>& out) {
    auto* messenger = rt->TryGetSubsystem<dist::Messenger>(Subsystem::kMessenger);
    if (messenger == nullptr) {
      return;
    }
    const dist::Messenger::Stats& s = messenger->stats();
    auto get = [](const std::atomic<std::uint64_t>& a) {
      return static_cast<double>(a.load(std::memory_order_relaxed));
    };
    out.emplace_back("messenger_messages_sent", get(s.messages_sent));
    out.emplace_back("messenger_messages_received", get(s.messages_received));
    out.emplace_back("messenger_dials", get(s.dials));
    out.emplace_back("messenger_accepts", get(s.accepts));
    out.emplace_back("messenger_reconnects", get(s.reconnects));
    out.emplace_back("messenger_dropped", get(s.dropped));
    out.emplace_back("messenger_bad_frames", get(s.bad_frames));
    out.emplace_back("messenger_control_locks", get(s.control_locks));
    // Per-peer attribution: the misbehaving-client signal (fig12 prerequisite).
    for (const auto& peer : messenger->BadFramesByPeer()) {
      out.emplace_back(
          "messenger_bad_frames{peer=\"" + peer.first.ToString() + "\"}",
          static_cast<double>(peer.second));
    }
  });
}

}  // namespace obs
}  // namespace ebbrt
