// obs::Histogram — fixed-size log-linear latency/size histogram (HDR-style).
//
// The recording path is built for the per-core always-on discipline the rest of the runtime
// follows: a Record is one bit-scan plus three relaxed atomic bumps into a fixed inline
// bucket array — no locks, no heap, no branches that depend on prior samples. Buckets are
// log-linear: values below 2^kSubBits get exact unit buckets, and every power-of-two range
// above is split into 2^kSubBits linear sub-buckets, bounding the relative quantile error at
// 1/2^kSubBits (12.5% with kSubBits = 3) while keeping the whole table at 496 * 8 bytes.
//
// Concurrency contract (same as the runtime's other per-core stats): each Histogram instance
// has ONE writer core; any core may read concurrently through Sample/Snapshot. Relaxed
// atomics make the cross-core reads well-defined; a snapshot is a consistent-enough view at
// an event boundary (exact under SimWorld, monotonic under real threads).
//
// This header is dependency-free on purpose: the EventManager and the loadgens embed
// histograms directly without pulling in the Ebb machinery.
#ifndef EBBRT_SRC_OBS_HISTOGRAM_H_
#define EBBRT_SRC_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ebbrt {
namespace obs {

class Histogram {
 public:
  // Sub-bucket resolution: 2^kSubBits linear buckets per power-of-two range.
  static constexpr std::size_t kSubBits = 3;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  // Unit buckets [0, kSub) + one group of kSub sub-buckets per msb position kSubBits..63.
  static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;  // 496

  // Bucket index for a value. Values < kSub get exact unit buckets; above that the top
  // kSubBits bits below the msb select the sub-bucket within the msb's group.
  static constexpr std::size_t Index(std::uint64_t v) {
    if (v < kSub) {
      return static_cast<std::size_t>(v);
    }
    std::size_t msb = 63 - static_cast<std::size_t>(__builtin_clzll(v));
    std::size_t group = msb - kSubBits + 1;  // 1.. for msb = kSubBits..
    std::size_t sub = static_cast<std::size_t>(v >> (msb - kSubBits)) & (kSub - 1);
    return (group << kSubBits) + sub;
  }

  // Smallest value mapping to bucket `index` (the exact value for unit buckets).
  static constexpr std::uint64_t LowerBound(std::size_t index) {
    if (index < kSub) {
      return index;
    }
    std::size_t group = index >> kSubBits;
    std::uint64_t sub = index & (kSub - 1);
    return (kSub + sub) << (group - 1);
  }

  // Largest value mapping to bucket `index` (what Quantile reports, so the estimate is
  // always >= the exact quantile and within one sub-bucket width above it).
  static constexpr std::uint64_t UpperBound(std::size_t index) {
    return index + 1 < kBuckets ? LowerBound(index + 1) - 1
                                : ~std::uint64_t{0};
  }

  // A mergeable, plain (non-atomic) copy of a histogram's state. Merging per-core samples
  // yields the machine-wide distribution; quantiles come from the merged view.
  struct Snapshot {
    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    void Merge(const Snapshot& other) {
      for (std::size_t i = 0; i < kBuckets; ++i) {
        buckets[i] += other.buckets[i];
      }
      count += other.count;
      sum += other.sum;
    }

    // Value at quantile q in [0, 1]: the upper bound of the bucket holding the ceil(q*count)-th
    // sample. 0 when empty. Reported >= exact and <= exact * (1 + 1/kSub) + 1.
    std::uint64_t Quantile(double q) const {
      if (count == 0) {
        return 0;
      }
      if (q < 0) {
        q = 0;
      }
      if (q > 1) {
        q = 1;
      }
      std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(count));
      if (target < 1) {
        target = 1;
      }
      if (target > count) {
        target = count;
      }
      std::uint64_t seen = 0;
      for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen >= target) {
          return UpperBound(i);
        }
      }
      return UpperBound(kBuckets - 1);
    }

    std::uint64_t P50() const { return Quantile(0.50); }
    std::uint64_t P95() const { return Quantile(0.95); }
    std::uint64_t P99() const { return Quantile(0.99); }
    std::uint64_t P999() const { return Quantile(0.999); }
    double Mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  // Owner core only. One bit-scan, three relaxed load/store pairs — no read-modify-write:
  // the single-writer contract makes a plain bump sufficient, and keeps the recording cost
  // flat even on architectures where fetch_add is a full barrier.
  void Record(std::uint64_t v) {
    std::size_t i = Index(v);
    buckets_[i].store(buckets_[i].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    count_.store(count_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
  }

  // Any core: accumulates this histogram's current state into `out` (merge semantics, so a
  // caller sums per-core reps by sampling them all into one Snapshot).
  void Sample(Snapshot* out) const {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out->buckets[i] += buckets_[i].load(std::memory_order_relaxed);
    }
    out->count += count_.load(std::memory_order_relaxed);
    out->sum += sum_.load(std::memory_order_relaxed);
  }

  Snapshot TakeSnapshot() const {
    Snapshot s;
    Sample(&s);
    return s;
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // Owner core only (benches reset between sweep phases).
  void Reset() {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace obs
}  // namespace ebbrt

#endif  // EBBRT_SRC_OBS_HISTOGRAM_H_
