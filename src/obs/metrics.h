// obs — the always-on telemetry plane (metrics registry + distributed trace plumbing).
//
// The repo's visibility used to be a patchwork: five unrelated stats() structs, percentile
// math re-implemented inside each loadgen, and no per-hop record of a cross-shard request at
// all. This module gives the machine ONE per-core, lock-free, zero-allocation observability
// Ebb, in the style of eBPF's always-on in-kernel instrumentation: cheap enough to leave
// enabled, structured enough that the autoscaler and the benches can consume it directly.
//
//   * MetricRegistry is the per-core representative (MulticoreEbb shape, static id
//     kMetricRegistryId). Recording a counter/gauge/histogram is a plain array index bump
//     into that core's fixed inline slots — no locks, no heap, no cross-core traffic.
//   * ObsRoot is the per-machine root (Subsystem::kObservability): the name table, the
//     global level switch (off / metrics / metrics+tracing), pull-style collectors that
//     re-home the legacy stats() structs (EventManager, mem::stats, NetworkManager,
//     Messenger, BufferPool occupancy) without touching their hot paths, and the span rings'
//     control plane.
//   * Snapshots: SnapshotNow() reads every core's slots with relaxed loads (any-core safe);
//     SnapshotAsync() rides the PR 6 interconnect — one SpawnRemote per core samples that
//     core's slots at an event boundary and an atomic fan-in completes on the origin core,
//     taking zero control-plane locks (tests assert control_locks stays flat).
//   * Tracing: each core carries a current {trace id, span id} context (TraceScope RAII).
//     The RPC layer stamps both into every frame (rpc.h's widened RpcHeader) so a trace id
//     survives retries under fresh request ids and ShardRouter failovers; completed hops are
//     written as SpanRecords into a per-core preallocated ring. Ids derive from (runtime id,
//     core, sequence) — fully deterministic under SimWorld, so tests assert exact span
//     trees.
#ifndef EBBRT_SRC_OBS_METRICS_H_
#define EBBRT_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/core/ebb_ref.h"
#include "src/core/runtime.h"
#include "src/obs/histogram.h"
#include "src/platform/context.h"
#include "src/platform/debug.h"

namespace ebbrt {
namespace obs {

// Global instrumentation level for one machine. kMetrics enables the event-plane histogram
// recording; kTracing additionally stamps trace ids into RPC frames and writes span records.
// The plane is born at kTracing — "always on" is the design point; benches dial it down to
// measure the plane's own cost.
enum class Level : std::uint8_t { kOff = 0, kMetrics = 1, kTracing = 2 };

enum class SpanKind : std::uint8_t { kLocal = 0, kClient = 1, kServer = 2 };
enum class SpanStatus : std::uint8_t { kOk = 0, kError = 1, kTimeout = 2, kPeerLost = 3 };

// One completed hop of a distributed request. POD, written whole into a preallocated
// per-core ring — recording a span never allocates.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_span = 0;  // 0 = root of its trace
  EbbId service = 0;              // target service id (client/server) or logical op owner
  std::uint16_t opcode = 0;
  SpanKind kind = SpanKind::kLocal;
  SpanStatus status = SpanStatus::kOk;
  std::uint64_t start_ns = 0;     // virtual time under SimWorld
  std::uint64_t end_ns = 0;
  std::uint32_t attempts = 0;     // client spans: send attempts (1 = no retry)
  std::uint32_t core = 0;         // recording core
};

// Dense handle for a registered metric (index into the per-core slot arrays).
using MetricId = std::uint32_t;

class ObsRoot;

// --- Per-core representative -----------------------------------------------------------------
//
// All recording methods are owner-core only (the usual non-preemption argument); the slot
// arrays are relaxed atomics so any core can snapshot them concurrently.
class MetricRegistry {
 public:
  // Capacity of the per-core slot arrays. Registration Kasserts on overflow — these are
  // machine-level metric families, not per-request keys.
  static constexpr std::size_t kMaxCounters = 64;
  static constexpr std::size_t kMaxGauges = 32;
  static constexpr std::size_t kMaxHistograms = 24;
  // Span ring capacity per core (power of two). The ring wraps: recent spans win.
  static constexpr std::size_t kSpanRingCap = 4096;

  static EbbRef<MetricRegistry> Instance() {
    return EbbRef<MetricRegistry>(kMetricRegistryId);
  }
  static MetricRegistry& HandleFault(EbbId id);

  MetricRegistry(ObsRoot& root, std::size_t machine_core);

  ObsRoot& root() { return root_; }
  std::size_t machine_core() const { return machine_core_; }

  // --- Hot path (owner core) ---------------------------------------------------------------
  void Add(MetricId id, std::uint64_t delta = 1) {
    counters_[id].store(counters_[id].load(std::memory_order_relaxed) + delta,
                        std::memory_order_relaxed);
  }
  void SetGauge(MetricId id, std::int64_t v) {
    gauges_[id].store(v, std::memory_order_relaxed);
  }
  Histogram& Hist(MetricId id) { return hists_[id]; }
  void RecordHist(MetricId id, std::uint64_t v) { hists_[id].Record(v); }

  // --- Trace context (owner core) ------------------------------------------------------------
  struct TraceContext {
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
  };
  TraceContext current() const { return ctx_; }
  std::uint64_t NewTraceId();
  std::uint32_t NewSpanId();
  // Writes one completed span into this core's ring. Never allocates; the ring wraps.
  void RecordSpan(const SpanRecord& span);
  std::uint64_t spans_recorded() const {
    return span_next_.load(std::memory_order_relaxed);
  }

 private:
  friend class ObsRoot;

  ObsRoot& root_;
  std::size_t machine_core_;

  std::atomic<std::uint64_t> counters_[kMaxCounters] = {};
  std::atomic<std::int64_t> gauges_[kMaxGauges] = {};
  Histogram hists_[kMaxHistograms];

  TraceContext ctx_;               // current trace scope (owner core only)
  std::uint64_t trace_seq_ = 0;
  std::uint32_t span_seq_ = 0;
  // Preallocated at rep construction (control plane) — the recording path never allocates.
  std::unique_ptr<SpanRecord[]> span_ring_;
  std::atomic<std::uint64_t> span_next_{0};  // total spans ever recorded; ring index mod cap
};

// --- Per-machine root ------------------------------------------------------------------------
class ObsRoot {
 public:
  // The machine's plane, creating and installing it (Subsystem::kObservability, root under
  // kMetricRegistryId) on first use. Must be called from one of `runtime`'s cores the first
  // time. Construction attaches the level switch to every EventManager rep and installs the
  // default collectors that re-home the legacy stats() structs.
  static ObsRoot& For(Runtime& runtime);
  // The plane if it exists, nullptr otherwise — for hot paths that must not force creation.
  static ObsRoot* TryFor(Runtime& runtime) {
    return runtime.TryGetSubsystem<ObsRoot>(Subsystem::kObservability);
  }

  explicit ObsRoot(Runtime& runtime);
  ~ObsRoot();

  ObsRoot(const ObsRoot&) = delete;
  ObsRoot& operator=(const ObsRoot&) = delete;

  Runtime& runtime() { return runtime_; }

  Level level() const { return static_cast<Level>(level_.load(std::memory_order_relaxed)); }
  void SetLevel(Level level) {
    level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
  }
  bool metrics_on() const { return level() >= Level::kMetrics; }
  bool tracing_on() const { return level() >= Level::kTracing; }

  // --- Registration (control plane; idempotent by name) --------------------------------------
  MetricId RegisterCounter(const std::string& name);
  MetricId RegisterGauge(const std::string& name);
  MetricId RegisterHistogram(const std::string& name);

  // Pull-style collectors: sampled at snapshot time, never on a hot path. This is how the
  // legacy stats() structs (and any labeled series, e.g. per-peer bad_frames) join the
  // registry without being rewritten. Scalar samples carry their full exposition name,
  // labels included.
  using Sample = std::pair<std::string, double>;
  using Collector = std::function<void(std::vector<Sample>&)>;
  using HistSample = std::pair<std::string, Histogram::Snapshot>;
  using HistCollector = std::function<void(std::vector<HistSample>&)>;
  std::uint64_t AddCollector(Collector collector);
  std::uint64_t AddHistCollector(HistCollector collector);
  void RemoveCollector(std::uint64_t handle);

  // --- Snapshots -----------------------------------------------------------------------------
  struct MetricsSnapshot {
    std::vector<Sample> samples;     // counters (summed across cores), gauges, collector output
    std::vector<HistSample> hists;   // registered + collector histograms, merged across cores
  };
  // Direct cross-core relaxed reads; callable from any of the machine's cores.
  MetricsSnapshot SnapshotNow();
  // Interconnect-riding aggregation: one SpawnRemote per core samples that core's slots at
  // an event boundary; an atomic fan-in merges and delivers `done` back on the calling core.
  // Zero locks end to end (SpawnRemote is a slab-carved node + one CAS since PR 6).
  void SnapshotAsync(std::function<void(MetricsSnapshot)> done);
  // The /metrics exposition text for a snapshot (Prometheus-flavored; histograms render as
  // _count/_sum plus q="0.5|0.99|0.999" quantile samples).
  static std::string RenderText(const MetricsSnapshot& snapshot);

  // --- Tracing (control-plane views; recording goes through the reps) ------------------------
  // All spans currently held in the per-core rings, oldest first per core. Control plane:
  // tests and debug endpoints, not the datapath.
  std::vector<SpanRecord> Spans() const;
  void ClearSpans();
  std::uint64_t NowNs();

  // RAII trace scope for the current core: installs {trace_id, span_id} as the ambient
  // context so RPC calls issued inside pick it up, restores the previous context on exit.
  class TraceScope {
   public:
    TraceScope(ObsRoot& root, std::uint64_t trace_id, std::uint32_t span_id);
    ~TraceScope();
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

   private:
    MetricRegistry& rep_;
    MetricRegistry::TraceContext saved_;
  };

  // The rep for `machine_core`, created on first use (control-plane lock on creation only).
  MetricRegistry& RepFor(std::size_t machine_core);
  MetricRegistry* TryRep(std::size_t machine_core) const {
    return reps_[machine_core].get();
  }
  std::size_t num_cores() const { return reps_.size(); }

 private:
  friend class MetricRegistry;

  void SampleCore(std::size_t machine_core, MetricsSnapshot* out);
  void MergeAndFinish(MetricsSnapshot* out);
  void InstallDefaultCollectors();

  Runtime& runtime_;
  std::atomic<std::uint8_t> level_{static_cast<std::uint8_t>(Level::kTracing)};

  mutable std::mutex mu_;  // registration + rep creation; never on a recording path
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::uint64_t next_collector_ = 1;
  std::vector<std::pair<std::uint64_t, Collector>> collectors_;
  std::vector<std::pair<std::uint64_t, HistCollector>> hist_collectors_;

  std::vector<std::unique_ptr<MetricRegistry>> reps_;  // indexed by machine core
};

// The current core's representative (faults in the root and rep on first touch).
inline MetricRegistry& Local() { return *MetricRegistry::Instance(); }

}  // namespace obs
}  // namespace ebbrt

#endif  // EBBRT_SRC_OBS_METRICS_H_
