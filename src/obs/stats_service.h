// obs::StatsService — the RPC scrape surface of the telemetry plane.
//
// /metrics (http_server.cc) serves scrapers that can reach a machine's HTTP port; the hosted
// frontend, though, already speaks to every native machine over the Messenger — so the plane
// also exposes itself as an ordinary RPC service. A frontend (or a test, or the autoscaler)
// scrapes any machine with one Call and gets back the same Prometheus-flavored text the HTTP
// endpoint renders, built from the same ObsRoot snapshot. The reply's `aux` carries the
// sample count so a scraper can sanity-check truncation-free delivery without parsing.
#ifndef EBBRT_SRC_OBS_STATS_SERVICE_H_
#define EBBRT_SRC_OBS_STATS_SERVICE_H_

#include <string>

#include "src/dist/rpc.h"
#include "src/obs/metrics.h"

namespace ebbrt {
namespace obs {

// Static service id, clear of the shard range (kFirstStaticUserId+8 .. +31).
inline constexpr EbbId kStatsServiceId = kFirstStaticUserId + 33;

inline constexpr std::uint16_t kStatsOpScrape = 1;

// The serving half: install one on any machine whose plane should be remotely scrapable.
class StatsService final : public dist::RpcServer {
 public:
  explicit StatsService(Runtime& runtime);

  std::uint64_t scrapes() const { return scrapes_; }

 private:
  void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                  std::uint32_t aux, std::unique_ptr<IOBuf> body) override;

  Runtime& runtime_;
  std::uint64_t scrapes_ = 0;
};

// The scraping half: one client per (machine, target) pair, like any RPC client.
class StatsClient {
 public:
  StatsClient(Runtime& runtime, Ipv4Addr server);

  // Fulfills with the target machine's rendered /metrics text.
  Future<std::string> Scrape();

 private:
  dist::RpcClient client_;
};

}  // namespace obs
}  // namespace ebbrt

#endif  // EBBRT_SRC_OBS_STATS_SERVICE_H_
