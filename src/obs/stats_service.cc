#include "src/obs/stats_service.h"

#include <utility>

namespace ebbrt {
namespace obs {

StatsService::StatsService(Runtime& runtime)
    : dist::RpcServer(runtime, kStatsServiceId), runtime_(runtime) {}

void StatsService::HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                              std::uint32_t /*aux*/, std::unique_ptr<IOBuf> /*body*/) {
  if (opcode != kStatsOpScrape) {
    ReplyError(from, request_id, "stats: unknown opcode");
    return;
  }
  ++scrapes_;
  // Snapshot on the arrival core (any of the machine's cores may sample the relaxed slots)
  // and render; the scrape path copies freely — it is control plane by definition.
  ObsRoot::MetricsSnapshot snapshot = ObsRoot::For(runtime_).SnapshotNow();
  std::string text = ObsRoot::RenderText(snapshot);
  Reply(from, request_id, static_cast<std::uint32_t>(snapshot.samples.size()),
        IOBuf::CopyBuffer(text));
}

StatsClient::StatsClient(Runtime& runtime, Ipv4Addr server)
    : client_(runtime, kStatsServiceId, server) {}

Future<std::string> StatsClient::Scrape() {
  return client_.Call(kStatsOpScrape, 0, nullptr)
      .Then([](Future<dist::RpcClient::Response> f) {
        dist::RpcClient::Response response = f.Get();
        return dist::ChainToString(response.body.get());
      });
}

}  // namespace obs
}  // namespace ebbrt
