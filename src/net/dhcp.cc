#include "src/net/dhcp.h"

#include <cstring>
#include <memory>

namespace ebbrt {

namespace {

constexpr std::uint32_t kDhcpMagic = 0x63825363;
constexpr std::uint8_t kOptMessageType = 53;
constexpr std::uint8_t kOptSubnetMask = 1;
constexpr std::uint8_t kOptRouter = 3;
constexpr std::uint8_t kOptRequestedIp = 50;
constexpr std::uint8_t kOptEnd = 255;

struct ParsedOptions {
  std::uint8_t message_type = 0;
  Ipv4Addr subnet_mask;
  Ipv4Addr router;
  Ipv4Addr requested_ip;
};

ParsedOptions ParseOptions(const IOBuf& msg) {
  ParsedOptions out;
  std::size_t off = sizeof(DhcpHeader);
  std::size_t len = msg.ComputeChainDataLength();
  std::uint8_t buf[4];
  while (off + 2 <= len) {
    std::uint8_t tag;
    msg.CopyOut(&tag, 1, off);
    if (tag == kOptEnd) {
      break;
    }
    std::uint8_t opt_len;
    msg.CopyOut(&opt_len, 1, off + 1);
    if (off + 2 + opt_len > len) {
      break;
    }
    if (opt_len <= 4) {
      msg.CopyOut(buf, opt_len, off + 2);
      std::uint32_t v = 0;
      if (opt_len == 4) {
        std::memcpy(&v, buf, 4);
        v = NetToHost32(v);
      }
      switch (tag) {
        case kOptMessageType:
          out.message_type = buf[0];
          break;
        case kOptSubnetMask:
          out.subnet_mask = {v};
          break;
        case kOptRouter:
          out.router = {v};
          break;
        case kOptRequestedIp:
          out.requested_ip = {v};
          break;
        default:
          break;
      }
    }
    off += 2 + opt_len;
  }
  return out;
}

std::unique_ptr<IOBuf> BuildMessage(std::uint8_t op, std::uint32_t xid, MacAddr chaddr,
                                    Ipv4Addr yiaddr, DhcpMessageType type,
                                    Ipv4Addr subnet_mask, Ipv4Addr router,
                                    Ipv4Addr requested) {
  // Header + generous option space.
  auto buf = IOBuf::Create(sizeof(DhcpHeader) + 32, /*zero=*/true);
  auto& hdr = buf->Get<DhcpHeader>();
  hdr.op = op;
  hdr.htype = 1;
  hdr.hlen = 6;
  hdr.xid = HostToNet32(xid);
  hdr.yiaddr = HostToNet32(yiaddr.raw);
  std::memcpy(hdr.chaddr, chaddr.bytes.data(), 6);
  hdr.magic = HostToNet32(kDhcpMagic);
  auto* opt = buf->WritableData() + sizeof(DhcpHeader);
  *opt++ = kOptMessageType;
  *opt++ = 1;
  *opt++ = static_cast<std::uint8_t>(type);
  auto put_addr = [&opt](std::uint8_t tag, Ipv4Addr addr) {
    *opt++ = tag;
    *opt++ = 4;
    std::uint32_t v = HostToNet32(addr.raw);
    std::memcpy(opt, &v, 4);
    opt += 4;
  };
  if (!(subnet_mask == Ipv4Addr{})) {
    put_addr(kOptSubnetMask, subnet_mask);
  }
  if (!(router == Ipv4Addr{})) {
    put_addr(kOptRouter, router);
  }
  if (!(requested == Ipv4Addr{})) {
    put_addr(kOptRequestedIp, requested);
  }
  *opt++ = kOptEnd;
  return buf;
}

std::uint64_t ChaddrKey(const std::uint8_t* chaddr) {
  std::uint64_t key = 0;
  std::memcpy(&key, chaddr, 6);
  return key;
}

}  // namespace

namespace dhcp {

Future<Interface::IpConfig> Acquire(NetworkManager& network, Interface& iface) {
  struct Exchange {
    Promise<Interface::IpConfig> done;
    std::uint32_t xid;
    bool requested = false;
  };
  auto ex = std::make_shared<Exchange>();
  ex->xid = 0x4242 + static_cast<std::uint32_t>(iface.mac().bytes[5]);
  Future<Interface::IpConfig> result = ex->done.GetFuture();
  MacAddr mac = iface.mac();

  network.BindUdp(kDhcpClientPort, [ex, &network, &iface, mac](Ipv4Addr, std::uint16_t,
                                                               std::unique_ptr<IOBuf> msg) {
    if (msg->ComputeChainDataLength() < sizeof(DhcpHeader)) {
      return;
    }
    DhcpHeader hdr;
    msg->CopyOut(&hdr, sizeof(hdr));
    if (NetToHost32(hdr.xid) != ex->xid || NetToHost32(hdr.magic) != kDhcpMagic) {
      return;
    }
    ParsedOptions opts = ParseOptions(*msg);
    Ipv4Addr offered{NetToHost32(hdr.yiaddr)};
    if (opts.message_type == kDhcpOffer && !ex->requested) {
      ex->requested = true;
      auto request = BuildMessage(1, ex->xid, mac, {}, kDhcpRequest, {}, {}, offered);
      network.SendUdp(Ipv4Addr::BroadcastAll(), kDhcpClientPort, kDhcpServerPort,
                      std::move(request));
    } else if (opts.message_type == kDhcpAck) {
      Interface::IpConfig config;
      config.addr = offered;
      config.netmask = opts.subnet_mask.raw != 0 ? opts.subnet_mask
                                                 : Ipv4Addr::Of(255, 255, 255, 0);
      config.gateway = opts.router;
      iface.set_config(config);
      network.UnbindUdp(kDhcpClientPort);
      ex->done.SetValue(config);
    }
  });

  auto discover = BuildMessage(1, ex->xid, mac, {}, kDhcpDiscover, {}, {}, {});
  network.SendUdp(Ipv4Addr::BroadcastAll(), kDhcpClientPort, kDhcpServerPort,
                  std::move(discover));
  return result;
}

}  // namespace dhcp

DhcpServer::DhcpServer(NetworkManager& network, Ipv4Addr pool_start, std::uint32_t pool_size,
                       Ipv4Addr netmask, Ipv4Addr gateway)
    : network_(network), pool_start_(pool_start), pool_size_(pool_size), netmask_(netmask),
      gateway_(gateway) {
  network_.BindUdp(kDhcpServerPort,
                   [this](Ipv4Addr src, std::uint16_t sport, std::unique_ptr<IOBuf> msg) {
                     HandleMessage(src, sport, std::move(msg));
                   });
}

DhcpServer::~DhcpServer() { network_.UnbindUdp(kDhcpServerPort); }

void DhcpServer::HandleMessage(Ipv4Addr, std::uint16_t, std::unique_ptr<IOBuf> msg) {
  if (msg->ComputeChainDataLength() < sizeof(DhcpHeader)) {
    return;
  }
  DhcpHeader hdr;
  msg->CopyOut(&hdr, sizeof(hdr));
  if (NetToHost32(hdr.magic) != kDhcpMagic || hdr.op != 1) {
    return;
  }
  ParsedOptions opts = ParseOptions(*msg);
  std::uint64_t key = ChaddrKey(hdr.chaddr);
  Ipv4Addr lease;
  {
    std::lock_guard<Spinlock> lock(mu_);
    auto it = leases_.find(key);
    if (it != leases_.end()) {
      lease = it->second;
    } else {
      Kbugon(next_offset_ >= pool_size_, "DhcpServer: address pool exhausted");
      lease = Ipv4Addr{pool_start_.raw + next_offset_++};
      leases_.emplace(key, lease);
    }
  }
  if (opts.message_type == kDhcpDiscover) {
    Reply(hdr, kDhcpOffer, lease);
  } else if (opts.message_type == kDhcpRequest) {
    Reply(hdr, kDhcpAck, lease);
  }
}

void DhcpServer::Reply(const DhcpHeader& request, DhcpMessageType type, Ipv4Addr yiaddr) {
  MacAddr chaddr;
  std::memcpy(chaddr.bytes.data(), request.chaddr, 6);
  auto reply = BuildMessage(2, NetToHost32(request.xid), chaddr, yiaddr, type, netmask_,
                            gateway_, {});
  // The client has no address yet: reply via broadcast.
  network_.SendUdp(Ipv4Addr::BroadcastAll(), kDhcpServerPort, kDhcpClientPort,
                   std::move(reply));
}

}  // namespace ebbrt
