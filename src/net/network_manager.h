// NetworkManager — the EbbRT network stack (§3.6): Ethernet/ARP/IPv4/UDP and the plumbing TCP
// (tcp.h) builds on.
//
// Properties carried over from the paper:
//   * Event-driven, zero-copy interfaces: the driver hands frames up synchronously; each layer
//     Advance()s past its header; applications receive the very IOBuf the device filled.
//   * No socket layer and no stack-side buffering: applications install handlers and manage
//     their own pacing.
//   * ArpFind returns Future<MacAddr>; on a cache hit the continuation runs synchronously
//     (Figure 2's EthArpSend is reproduced almost line for line in interface.cc).
//   * Per-flow core affinity via the NIC's symmetric RSS: all processing for a connection
//     happens on the core where its state lives — no synchronization on the data path.
#ifndef EBBRT_SRC_NET_NETWORK_MANAGER_H_
#define EBBRT_SRC_NET_NETWORK_MANAGER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/runtime.h"
#include "src/future/future.h"
#include "src/iobuf/iobuf.h"
#include "src/net/net_types.h"
#include "src/rcu/rcu.h"
#include "src/rcu/rcu_hash_table.h"
#include "src/sim/nic.h"

namespace ebbrt {

class NetworkManager;
class TcpManager;

// Incremental Internet checksum over IOBuf chains (handles odd-length element boundaries).
class ChecksumAccumulator {
 public:
  void Add(const void* data, std::size_t len);
  void AddChain(const IOBuf& chain);
  std::uint16_t Finish() const;

 private:
  std::uint32_t sum_ = 0;
  bool odd_ = false;
};

class Interface {
 public:
  struct IpConfig {
    Ipv4Addr addr;
    Ipv4Addr netmask = Ipv4Addr::Of(255, 255, 255, 0);
    Ipv4Addr gateway;
  };

  Interface(NetworkManager& manager, sim::Nic& nic, IpConfig config);

  Ipv4Addr addr() const { return config_.addr; }
  const IpConfig& config() const { return config_; }
  void set_config(IpConfig config) { config_ = config; }
  MacAddr mac() const { return nic_.mac(); }
  sim::Nic& nic() { return nic_; }

  // Figure 2: route, ARP-resolve, prepend the Ethernet header, transmit. `packet` must start
  // with a fully-formed IPv4 header and have >= sizeof(EthernetHeader) headroom.
  Future<void> EthArpSend(std::uint16_t proto, std::unique_ptr<IOBuf> packet);

  // ARP resolution with a future (synchronous continuation on cache hit).
  Future<MacAddr> ArpFind(Ipv4Addr dest);

  // Next hop selection: on-subnet destinations go direct, everything else to the gateway.
  Ipv4Addr Route(Ipv4Addr dst) const {
    if ((dst.raw & config_.netmask.raw) == (config_.addr.raw & config_.netmask.raw) ||
        dst.IsBroadcast()) {
      return dst;
    }
    return config_.gateway;
  }

  // Driver entry point: runs on the RSS-selected core with frame ownership.
  void Receive(std::unique_ptr<IOBuf> frame);

 private:
  void ReceiveArp(std::unique_ptr<IOBuf> frame);
  void ReceiveIpv4(std::unique_ptr<IOBuf> frame);
  void SendArpRequest(Ipv4Addr target);
  // ARP requests are retransmitted until answered (frames can be lost); after the retry
  // budget the waiting futures fail, which propagates to e.g. pending TCP connects.
  void ScheduleArpRetry(Ipv4Addr target, int attempt);

  NetworkManager& manager_;
  sim::Nic& nic_;
  IpConfig config_;
};

class NetworkManager {
 public:
  // One instance per machine, reachable from any of its cores.
  static NetworkManager& For(Runtime& runtime);
  static NetworkManager& Current() { return For(CurrentRuntime()); }

  explicit NetworkManager(Runtime& runtime);
  ~NetworkManager();

  Runtime& runtime() { return runtime_; }

  Interface& AddInterface(sim::Nic& nic, Interface::IpConfig config);
  Interface& interface() {
    Kassert(!interfaces_.empty(), "NetworkManager: no interface");
    return *interfaces_.front();
  }

  // --- UDP -----------------------------------------------------------------------------------
  // Handler runs on the RSS core for the flow with ownership of the (header-stripped) datagram.
  using UdpHandler =
      std::function<void(Ipv4Addr src, std::uint16_t src_port, std::unique_ptr<IOBuf>)>;
  void BindUdp(std::uint16_t port, UdpHandler handler);
  void UnbindUdp(std::uint16_t port);
  // Sends `data` (chain) as one datagram. No stack buffering: "an overwhelmed application may
  // have to drop datagrams" — and an oversized one is the application's bug.
  Future<void> SendUdp(Ipv4Addr dst, std::uint16_t src_port, std::uint16_t dst_port,
                       std::unique_ptr<IOBuf> data);

  // --- internal plumbing ----------------------------------------------------------------------
  RcuManagerRoot& rcu() { return rcu_; }
  TcpManager& tcp() { return *tcp_; }
  void HandleUdp(Interface& iface, const Ipv4Header& ip, std::unique_ptr<IOBuf> datagram);

  // ARP state shared by interfaces (one cache per machine).
  RcuHashTable<std::uint32_t, MacAddr>& arp_cache() { return arp_cache_; }
  Spinlock& arp_mu() { return arp_mu_; }
  std::unordered_map<std::uint32_t, std::vector<Promise<MacAddr>>>& arp_pending() {
    return arp_pending_;
  }

  // Stats for tests/benches.
  struct Stats {
    std::atomic<std::uint64_t> ip_rx{0};
    std::atomic<std::uint64_t> udp_rx{0};
    std::atomic<std::uint64_t> udp_dropped{0};
    std::atomic<std::uint64_t> tcp_rx{0};
    std::atomic<std::uint64_t> arp_rx{0};
    std::atomic<std::uint64_t> checksum_drops{0};

    // --- TX path (event-scoped send aggregation; see docs/ARCHITECTURE.md "TX path") ------
    std::atomic<std::uint64_t> tcp_tx_segments{0};       // every TCP segment put on the wire
    std::atomic<std::uint64_t> tcp_tx_data_segments{0};  // segments carrying payload
    std::atomic<std::uint64_t> tcp_tx_payload_bytes{0};
    // Send() calls merged into an already-started cork chain: the batching win. A pipelined
    // burst of N responses flushed as one chain counts N-1 here.
    std::atomic<std::uint64_t> sends_coalesced{0};
    std::atomic<std::uint64_t> cork_flushes{0};  // cork chains (or prefixes) put on the wire
    // Corked chains dropped because the connection was torn down before the event-boundary
    // flush (the flush-after-close hazard, handled by dropping — never sending — the chain).
    std::atomic<std::uint64_t> corked_drops{0};

    // --- RX path: IOBufQueue reassembly, reported by parser owners (zero-copy hit rate) ----
    std::atomic<std::uint64_t> rx_coalesce_ops{0};
    std::atomic<std::uint64_t> rx_coalesced_bytes{0};

    // Mean payload bytes per data-bearing segment — the per-op cost denominator benches
    // report. 0 when nothing was transmitted.
    double bytes_per_segment() const {
      std::uint64_t segs = tcp_tx_data_segments.load(std::memory_order_relaxed);
      if (segs == 0) {
        return 0.0;
      }
      return static_cast<double>(tcp_tx_payload_bytes.load(std::memory_order_relaxed)) /
             static_cast<double>(segs);
    }

    // --- Datapath allocation accounting (zero-malloc datapath; docs "Buffer lifecycle") --
    // Snapshot of the process-wide mem::stats() counters taken at the start of a bench's
    // measured (steady-state) window; the derived metrics report the allocation cost per
    // request SINCE the mark. allocs_per_op counts actual std::malloc events — the number
    // the slab/pool datapath collapses to ~0.
    void MarkAllocBaseline();
    std::uint64_t heap_allocs_since_mark() const;
    std::uint64_t iobuf_allocs_since_mark() const;
    std::uint64_t pool_hits_since_mark() const;
    std::uint64_t pool_misses_since_mark() const;
    double allocs_per_op(std::uint64_t requests) const;
    double pool_hit_rate_since_mark() const;

    std::uint64_t alloc_mark_heap = 0;
    std::uint64_t alloc_mark_iobuf = 0;
    std::uint64_t alloc_mark_pool_hits = 0;
    std::uint64_t alloc_mark_pool_misses = 0;
  };
  Stats& stats() { return stats_; }

 private:
  Runtime& runtime_;
  RcuManagerRoot& rcu_;
  std::vector<std::unique_ptr<Interface>> interfaces_;

  RcuHashTable<std::uint32_t, MacAddr> arp_cache_;
  Spinlock arp_mu_;
  std::unordered_map<std::uint32_t, std::vector<Promise<MacAddr>>> arp_pending_;

  RcuHashTable<std::uint16_t, std::shared_ptr<UdpHandler>> udp_bindings_;
  std::unique_ptr<TcpManager> tcp_;

  Stats stats_;
};

namespace net_internal {
// Writes an IPv4 header at the front of `buf`'s view, which must already cover the IP + L4
// header bytes (with Ethernet headroom reserved behind it).
void FillIpv4(IOBuf& buf, Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
              std::size_t l4_header_len, std::size_t payload_len);

// Builds an IPv4 packet head buffer (Ethernet headroom reserved, IPv4 header filled, L4
// header space appended; payload chain appended by the caller). The L4 header length is a
// template parameter so the whole buffer size is compile-time known: allocation is the
// constant-folded AllocFor<> slab fast path (§3.4).
template <std::size_t L4HeaderLen>
std::unique_ptr<IOBuf> BuildIpv4(Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
                                 std::size_t payload_len) {
  constexpr std::size_t kCapacity = sizeof(EthernetHeader) + sizeof(Ipv4Header) + L4HeaderLen;
  auto buf = IOBuf::CreateReserveFor<kCapacity>(sizeof(EthernetHeader));
  buf->Append(sizeof(Ipv4Header) + L4HeaderLen);
  FillIpv4(*buf, src, dst, proto, L4HeaderLen, payload_len);
  return buf;
}
}  // namespace net_internal

}  // namespace ebbrt

#endif  // EBBRT_SRC_NET_NETWORK_MANAGER_H_
