#include "src/net/tcp.h"

#include <atomic>

#include "src/event/event_manager.h"
#include "src/event/timer.h"
#include "src/mem/buffer_pool.h"
#include "src/net/network_manager.h"
#include "src/net/tx_batcher.h"

namespace ebbrt {

namespace {

constexpr std::uint64_t kRtxTimeoutNs = 5'000'000;    // 5 ms base RTO (LAN-scale sim)
constexpr std::uint32_t kMaxRtxBackoff = 8;           // then abort
constexpr std::uint64_t kTimeWaitNs = 20'000'000;     // shortened 2MSL for the simulator

std::atomic<std::uint32_t> g_iss{0x1000};

std::uint32_t NextIss() { return g_iss.fetch_add(64000, std::memory_order_relaxed); }

// Non-owning view chain over [offset, offset+len) of `owner` — the zero-copy transmit path.
// Validity: the views are consumed synchronously by the NIC/switch (which clones at the
// fabric boundary), and `owner` is retained by the retransmission queue until acked.
std::unique_ptr<IOBuf> SliceView(const IOBuf& owner, std::size_t offset, std::size_t len) {
  std::unique_ptr<IOBuf> head;
  const IOBuf* buf = &owner;
  while (buf != nullptr && offset >= buf->Length()) {
    offset -= buf->Length();
    buf = buf->Next();
  }
  while (len > 0) {
    Kassert(buf != nullptr, "SliceView: range exceeds chain");
    std::size_t here = buf->Length() - offset;
    std::size_t take = here < len ? here : len;
    auto view = IOBuf::WrapBuffer(buf->Data() + offset, take);
    if (head == nullptr) {
      head = std::move(view);
    } else {
      head->AppendChain(std::move(view));
    }
    len -= take;
    offset = 0;
    buf = buf->Next();
  }
  return head;
}

void AddPseudo(ChecksumAccumulator& acc, Ipv4Addr src, Ipv4Addr dst, std::uint16_t l4_len) {
  struct {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint8_t zero;
    std::uint8_t proto;
    std::uint16_t len;
  } __attribute__((packed)) pseudo;
  pseudo.src = HostToNet32(src.raw);
  pseudo.dst = HostToNet32(dst.raw);
  pseudo.zero = 0;
  pseudo.proto = kIpProtoTcp;
  pseudo.len = HostToNet16(l4_len);
  acc.Add(&pseudo, sizeof(pseudo));
}

}  // namespace

TcpEntry::TcpEntry(TcpManager& mgr, Interface& ifc, FourTuple t, std::size_t core)
    : manager(mgr), iface(ifc), tuple(t), owner_core(core) {}

// --- TcpPcb --------------------------------------------------------------------------------

namespace {

// Releases whatever ownership the entry holds over its current handler — deferred to a
// fresh event, never synchronously: handlers are routinely replaced or removed from inside
// their own callbacks, and destroying one under its own frame is use-after-free. (See the
// matching deferral in RemoveEntry.)
void DeferHandlerRelease(TcpEntry& entry) {
  if (entry.owned_handler == nullptr && entry.handler_anchor == nullptr) {
    return;
  }
  // Smart-pointer captures (not a release()'d raw pointer): if the world stops before the
  // event runs, the lambda's destructor still frees the handler.
  event::Local().Spawn([owned = std::move(entry.owned_handler),
                        anchor = std::move(entry.handler_anchor)]() mutable {
    owned.reset();
    anchor.reset();
  });
}

}  // namespace

void TcpPcb::InstallHandler(TcpHandler* handler) {
  DeferHandlerRelease(*entry_);
  entry_->handler = handler;
  if (handler != nullptr) {
    handler->pcb_ = *this;
  }
}

void TcpPcb::InstallHandler(std::unique_ptr<TcpHandler> handler) {
  DeferHandlerRelease(*entry_);
  entry_->handler = handler.get();
  entry_->owned_handler = std::move(handler);
  if (entry_->handler != nullptr) {
    entry_->handler->pcb_ = *this;
  }
}

void TcpPcb::InstallHandler(std::shared_ptr<TcpHandler> handler) {
  DeferHandlerRelease(*entry_);
  entry_->handler = handler.get();
  entry_->handler_anchor = std::move(handler);
  if (entry_->handler != nullptr) {
    entry_->handler->pcb_ = *this;
  }
}

namespace {

// Window space the peer currently grants beyond in-flight data, ignoring corked bytes (the
// flush path's budget — corked bytes are exactly what it is about to spend the budget on).
std::size_t RawWindowRemaining(const TcpEntry& e) {
  std::uint32_t inflight = e.snd_nxt - e.snd_una;
  return inflight >= e.snd_wnd ? 0 : e.snd_wnd - inflight;
}

}  // namespace

std::size_t TcpPcb::SendWindowRemaining() const {
  std::size_t raw = RawWindowRemaining(*entry_);
  std::size_t corked = entry_->cork_queue.ChainLength();
  return raw > corked ? raw - corked : 0;
}

void TcpPcb::SetReceiveWindow(std::uint16_t window) {
  entry_->rcv_wnd = window;
  if (entry_->state == TcpState::kEstablished) {
    // Notify the peer of the window change immediately (it may be blocked on zero window).
    entry_->manager.TransmitSegment(*entry_, kTcpAck, nullptr, entry_->snd_nxt,
                                    /*queue_rtx=*/false);
  }
}

bool TcpPcb::Send(std::unique_ptr<IOBuf> chain) {
  TcpEntry& e = *entry_;
  Kassert(CurrentContext().machine_core == e.owner_core, "TcpPcb::Send: wrong core");
  if (e.state != TcpState::kEstablished && e.state != TcpState::kCloseWait) {
    return false;
  }
  if (e.app_closed || e.close_after_flush) {
    return false;  // the application already closed its side
  }
  std::size_t len = chain->ComputeChainDataLength();
  if (len == 0) {
    return true;
  }
  // Paper contract: the application checked SendWindowRemaining; the stack has no send
  // buffer, so an out-of-window Send is refused rather than queued. Corked bytes count
  // against the window (SendWindowRemaining subtracts them), so corking never accumulates
  // more than one window of data.
  if (len > SendWindowRemaining()) {
    return false;
  }
  if (e.cork_count > 0 || e.auto_cork) {
    if (!e.cork_queue.Empty()) {
      e.manager.network().stats().sends_coalesced.fetch_add(1, std::memory_order_relaxed);
    }
    e.cork_queue.Append(std::move(chain));
    if (e.cork_count == 0) {
      // Auto-cork without a manual cork: the event-boundary flush drains it.
      e.manager.EnrollAutoCork(entry_);
    }
    return true;
  }
  e.manager.SendPayload(e, std::move(chain), len);
  return true;
}

void TcpPcb::Cork() {
  Kassert(CurrentContext().machine_core == entry_->owner_core, "TcpPcb::Cork: wrong core");
  ++entry_->cork_count;
}

void TcpPcb::Uncork() {
  TcpEntry& e = *entry_;
  Kassert(CurrentContext().machine_core == e.owner_core, "TcpPcb::Uncork: wrong core");
  if (e.app_closed || e.close_after_flush) {
    return;  // Close() already terminated the cork scope; a symmetric Uncork is a no-op
  }
  Kassert(e.cork_count > 0, "TcpPcb::Uncork: not corked");
  if (--e.cork_count == 0) {
    e.manager.FlushCorked(e);
  }
}

bool TcpPcb::Corked() const { return entry_->cork_count > 0 || entry_->auto_cork; }

std::size_t TcpPcb::CorkedBytes() const { return entry_->cork_queue.ChainLength(); }

void TcpPcb::SetAutoCork(bool enabled) { entry_->auto_cork = enabled; }

void TcpPcb::Close() {
  TcpEntry& e = *entry_;
  if (e.app_closed || e.close_after_flush) {
    return;
  }
  // Close terminates any open cork scope: no further data can be corked (Send refuses once
  // closing), so an un-matched Cork() must not be able to strand the chain or the FIN.
  e.cork_count = 0;
  if (!e.cork_queue.Empty() &&
      (e.state == TcpState::kEstablished || e.state == TcpState::kCloseWait)) {
    // Data is corked ahead of the FIN: it must occupy earlier sequence space, so the close
    // completes when the chain drains (event-boundary or ACK-driven flush).
    e.close_after_flush = true;
    e.manager.FlushCorked(e);
    return;
  }
  e.manager.FinishClose(e);
}

void TcpPcb::Abort() {
  TcpEntry& e = *entry_;
  if (e.removed || e.state == TcpState::kClosed) {
    return;
  }
  e.manager.TransmitSegment(e, kTcpRst | kTcpAck, nullptr, e.snd_nxt, /*queue_rtx=*/false);
  e.state = TcpState::kClosed;
  // RemoveEntry drops any corked chain (counted in corked_drops) — never flushed.
  e.manager.RemoveEntry(e);
}

// --- TcpManager ------------------------------------------------------------------------------

TcpManager::TcpManager(NetworkManager& network)
    : network_(network), table_(network.rcu(), 10), listeners_(network.rcu(), 4) {
  // One TX batcher per core, preallocated so the data path indexes without synchronization
  // (each batcher is only ever touched by its own core).
  std::size_t cores = network.runtime().num_cores();
  batchers_.reserve(cores);
  for (std::size_t i = 0; i < cores; ++i) {
    batchers_.push_back(std::make_unique<TxBatcher>(*this));
  }
}

TcpManager::~TcpManager() = default;

TxBatcher& TcpManager::batcher(std::size_t core) {
  Kassert(core < batchers_.size(), "TcpManager: no batcher for core");
  return *batchers_[core];
}

void TcpManager::EnrollAutoCork(const std::shared_ptr<TcpEntry>& entry) {
  batcher(entry->owner_core).Enroll(entry);
}

// The pre-cork TcpPcb::Send body: slice into MSS segments, transmit zero-copy views, retain
// the chain for retransmission.
void TcpManager::SendPayload(TcpEntry& e, std::unique_ptr<IOBuf> chain, std::size_t len) {
  std::shared_ptr<IOBuf> owner(std::move(chain));
  std::size_t offset = 0;
  while (offset < len) {
    std::size_t seg_len = std::min(kTcpMss, len - offset);
    std::uint32_t seq = e.snd_nxt;
    auto views = SliceView(*owner, offset, seg_len);
    e.snd_nxt += static_cast<std::uint32_t>(seg_len);
    TcpEntry::RtxSeg seg;
    seg.seq = seq;
    seg.len = static_cast<std::uint32_t>(seg_len);
    seg.flags = static_cast<std::uint8_t>(kTcpAck | kTcpPsh);
    // Retain the application chain for retransmission: zero-copy now, copy only on loss.
    seg.payload = SliceView(*owner, offset, seg_len);
    seg.owner = owner;
    e.rtx_queue.push_back(std::move(seg));
    TransmitSegment(e, kTcpAck | kTcpPsh, std::move(views), seq, /*queue_rtx=*/false);
    offset += seg_len;
  }
  ArmRtxTimer(e);
}

void TcpManager::FlushCorked(TcpEntry& e) {
  if (e.removed || (e.state != TcpState::kEstablished && e.state != TcpState::kCloseWait)) {
    // Torn down (or tearing down) before the flush: the corked chain must never reach the
    // wire — RemoveEntry already dropped and counted it, or drops it when it runs.
    if (!e.cork_queue.Empty()) {
      network_.stats().corked_drops.fetch_add(1, std::memory_order_relaxed);
      e.cork_queue.Move();
    }
    return;
  }
  if (e.cork_count > 0) {
    // A manual Cork() is open (possibly spanning an event boundary on an auto-cork
    // connection): honor it — nothing leaves until Uncork() brings the nesting to zero
    // (or Close() terminates the cork scope).
    return;
  }
  if (!e.cork_queue.Empty()) {
    // Window-limited partial flush: emit what the peer allows now; the remainder stays
    // corked and drains from the ACK path as the window reopens.
    std::size_t flush_len = std::min(RawWindowRemaining(e), e.cork_queue.ChainLength());
    if (flush_len > 0) {
      network_.stats().cork_flushes.fetch_add(1, std::memory_order_relaxed);
      std::unique_ptr<IOBuf> chain = e.cork_queue.Split(flush_len);
      SendPayload(e, std::move(chain), flush_len);
    }
  }
  if (e.close_after_flush && e.cork_queue.Empty()) {
    e.close_after_flush = false;
    FinishClose(e);
  }
}

void TcpManager::FinishClose(TcpEntry& e) {
  if (e.app_closed) {
    return;
  }
  e.app_closed = true;
  if (e.state == TcpState::kEstablished) {
    e.state = TcpState::kFinWait1;
  } else if (e.state == TcpState::kCloseWait) {
    e.state = TcpState::kLastAck;
  } else {
    e.state = TcpState::kClosed;
    RemoveEntry(e);
    return;
  }
  e.fin_sent = true;
  std::uint32_t seq = e.snd_nxt;
  e.snd_nxt += 1;  // FIN occupies one sequence number
  TcpEntry::RtxSeg seg;
  seg.seq = seq;
  seg.len = 1;
  seg.flags = kTcpFin | kTcpAck;
  e.rtx_queue.push_back(std::move(seg));
  TransmitSegment(e, kTcpFin | kTcpAck, nullptr, seq, /*queue_rtx=*/false);
  ArmRtxTimer(e);
}

void TcpManager::Listen(std::uint16_t port, AcceptFn accept) {
  auto listener = std::make_shared<Listener>();
  listener->accept = std::move(accept);
  listeners_.InsertOrReplace(port, std::move(listener));
}

void TcpManager::Unlisten(std::uint16_t port) { listeners_.Erase(port); }

std::uint16_t TcpManager::PickEphemeralPort(Interface& iface, Ipv4Addr dst,
                                            std::uint16_t dst_port,
                                            std::size_t desired_core) {
  for (int tries = 0; tries < 20000; ++tries) {
    std::uint16_t port = next_ephemeral_.fetch_add(1, std::memory_order_relaxed);
    if (port < 32768) {
      next_ephemeral_.store(33000, std::memory_order_relaxed);
      continue;
    }
    FourTuple tuple{iface.addr(), port, dst, dst_port};
    if (table_.Find(tuple) != nullptr) {
      continue;
    }
    if (iface.nic().CoreForFlow(iface.addr(), port, dst, dst_port) == desired_core) {
      return port;
    }
  }
  Kabort("TcpManager: no ephemeral port hashes to core %zu", desired_core);
}

Future<TcpPcb> TcpManager::Connect(Interface& iface, Ipv4Addr dst, std::uint16_t dst_port) {
  std::size_t core = CurrentContext().machine_core;
  std::uint16_t sport = PickEphemeralPort(iface, dst, dst_port, core);
  FourTuple tuple{iface.addr(), sport, dst, dst_port};
  auto entry = std::make_shared<TcpEntry>(*this, iface, tuple, core);
  std::uint32_t iss = NextIss();
  entry->state = TcpState::kSynSent;
  entry->snd_una = iss;
  entry->snd_nxt = iss + 1;
  entry->connect_pending = true;
  table_.Insert(tuple, entry);

  Future<TcpPcb> result =
      entry->connected.GetFuture().Then([entry](Future<void> f) {
        f.Get();
        return TcpPcb(entry);
      });

  TcpEntry::RtxSeg seg;
  seg.seq = iss;
  seg.len = 1;
  seg.flags = kTcpSyn;
  entry->rtx_queue.push_back(std::move(seg));
  TransmitSegment(*entry, kTcpSyn, nullptr, iss, /*queue_rtx=*/false);
  ArmRtxTimer(*entry);
  return result;
}

namespace {

// The head buffer every TCP segment is built in: a recycled MTU-class pool buffer on the
// connection's core when the pool is installed (the zero-alloc steady state), else the
// compile-time-sized slab path. Headroom for the Ethernet header is pre-reserved either way.
std::unique_ptr<IOBuf> TcpSegmentHead(Ipv4Addr src, Ipv4Addr dst, std::size_t payload_len) {
  constexpr std::size_t kL4 = sizeof(TcpHeader);
  BufferPool* pool = BufferPool::Local();
  if (pool != nullptr) {
    auto buf = pool->Alloc();
    buf->Append(sizeof(Ipv4Header) + kL4);
    net_internal::FillIpv4(*buf, src, dst, kIpProtoTcp, kL4, payload_len);
    return buf;
  }
  return net_internal::BuildIpv4<kL4>(src, dst, kIpProtoTcp, payload_len);
}

}  // namespace

void TcpManager::TransmitSegment(TcpEntry& entry, std::uint8_t flags,
                                 std::unique_ptr<IOBuf> payload, std::uint32_t seq,
                                 bool /*queue_rtx*/) {
  std::size_t payload_len = payload ? payload->ComputeChainDataLength() : 0;
  auto packet =
      TcpSegmentHead(entry.tuple.local_ip, entry.tuple.remote_ip, payload_len);
  auto& tcp = packet->Get<TcpHeader>(sizeof(Ipv4Header));
  tcp.src_port = HostToNet16(entry.tuple.local_port);
  tcp.dst_port = HostToNet16(entry.tuple.remote_port);
  tcp.seq = HostToNet32(seq);
  tcp.ack = (flags & kTcpAck) ? HostToNet32(entry.rcv_nxt) : 0;
  tcp.SetHeaderWords(5);
  tcp.flags = flags;
  tcp.window = HostToNet16(entry.rcv_wnd);
  tcp.checksum = 0;
  tcp.urgent = 0;
  ChecksumAccumulator acc;
  AddPseudo(acc, entry.tuple.local_ip, entry.tuple.remote_ip,
            static_cast<std::uint16_t>(sizeof(TcpHeader) + payload_len));
  acc.Add(&tcp, sizeof(TcpHeader));
  if (payload) {
    acc.AddChain(*payload);
    packet->AppendChain(std::move(payload));
  }
  tcp.checksum = acc.Finish();
  if (flags & kTcpAck) {
    entry.pending_ack = false;  // this segment carries the acknowledgment
  }
  auto& stats = network_.stats();
  stats.tcp_tx_segments.fetch_add(1, std::memory_order_relaxed);
  if (payload_len > 0) {
    stats.tcp_tx_data_segments.fetch_add(1, std::memory_order_relaxed);
    stats.tcp_tx_payload_bytes.fetch_add(payload_len, std::memory_order_relaxed);
  }
  entry.iface.EthArpSend(kEthTypeIpv4, std::move(packet));
}

void TcpManager::ArmRtxTimer(TcpEntry& entry) {
  if (entry.rtx_timer != 0 || entry.rtx_queue.empty()) {
    return;
  }
  auto self = table_.Find(entry.tuple);
  Kassert(self != nullptr, "ArmRtxTimer: entry not in table");
  std::shared_ptr<TcpEntry> shared = *self;
  std::uint64_t timeout = kRtxTimeoutNs << entry.rtx_backoff;
  entry.rtx_timer = Timer::Instance()->Start(
      timeout, [this, shared] { RtxTimeout(shared); });
}

void TcpManager::RtxTimeout(std::shared_ptr<TcpEntry> entry) {
  entry->rtx_timer = 0;
  if (entry->rtx_queue.empty() || entry->state == TcpState::kClosed) {
    return;
  }
  if (++entry->rtx_backoff > kMaxRtxBackoff) {
    // Peer unreachable: abort.
    entry->state = TcpState::kClosed;
    if (entry->handler != nullptr) {
      entry->handler->Abort();
    }
    if (entry->connect_pending) {
      entry->connect_pending = false;
      entry->connected.SetException(
          std::make_exception_ptr(std::runtime_error("tcp: connect timed out")));
    }
    RemoveEntry(*entry);
    return;
  }
  // Go-back-N: retransmit the oldest unacked segment.
  TcpEntry::RtxSeg& seg = entry->rtx_queue.front();
  std::unique_ptr<IOBuf> payload;
  if (seg.payload != nullptr) {
    payload = seg.payload->Clone();
  }
  TransmitSegment(*entry, seg.flags | (entry->state != TcpState::kSynSent ? kTcpAck : 0),
                  std::move(payload), seg.seq, false);
  ArmRtxTimer(*entry);
}

std::size_t TcpManager::SeverPeer(Ipv4Addr peer) {
  // Collect first: severing mutates the table, and ForEach is read-side iteration.
  std::vector<std::shared_ptr<TcpEntry>> victims;
  table_.ForEach([&](const FourTuple& tuple, const std::shared_ptr<TcpEntry>& entry) {
    if (tuple.remote_ip == peer) {
      victims.push_back(entry);
    }
  });
  for (auto& victim : victims) {
    auto sever = [this, entry = victim] {
      TcpEntry& e = *entry;
      if (e.removed || e.state == TcpState::kClosed) {
        return;  // lost a race with a concurrent close/abort
      }
      // Mirror the RST-receive path (ProcessSegment), plus the courtesy RST out so the
      // peer's state dies too instead of lingering until retransmission give-up.
      TransmitSegment(e, kTcpRst | kTcpAck, nullptr, e.snd_nxt, /*queue_rtx=*/false);
      e.state = TcpState::kClosed;
      if (e.connect_pending) {
        e.connect_pending = false;
        e.connected.SetException(
            std::make_exception_ptr(std::runtime_error("tcp: connection severed")));
      }
      if (e.handler != nullptr) {
        e.handler->Abort();
      }
      RemoveEntry(e);
    };
    if (CurrentContext().machine_core == victim->owner_core) {
      sever();
    } else {
      event::Local().SpawnRemote(std::move(sever), victim->owner_core);
    }
  }
  return victims.size();
}

void TcpManager::RemoveEntry(TcpEntry& entry) {
  // Idempotent: the abort paths reach here twice when a handler's Abort() itself calls
  // Pcb().Close() (handler -> Close -> RemoveEntry, then the stack's own RemoveEntry).
  if (entry.removed) {
    return;
  }
  entry.removed = true;
  // Flush-after-close hazard, handled generically: any corked chain dies with the entry —
  // the event-boundary / ACK flush paths see removed==true (the batcher's shared_ptr keeps
  // the entry inspectable) and must never transmit it.
  if (!entry.cork_queue.Empty()) {
    network_.stats().corked_drops.fetch_add(1, std::memory_order_relaxed);
    entry.cork_queue.Move();
  }
  entry.close_after_flush = false;
  if (entry.rtx_timer != 0) {
    Timer::Instance()->Stop(entry.rtx_timer);
    entry.rtx_timer = 0;
  }
  if (entry.time_wait_timer != 0) {
    Timer::Instance()->Stop(entry.time_wait_timer);
    entry.time_wait_timer = 0;
  }
  // Detach the handler now (no callbacks after removal); releasing transferred ownership is
  // deferred to a fresh event — RemoveEntry is routinely reached from *inside* a handler
  // callback (an application calling Close() within Receive()). Run-to-completion guarantees
  // the current event finishes before the release event runs.
  entry.handler = nullptr;
  DeferHandlerRelease(entry);
  table_.Erase(entry.tuple);
}

void TcpManager::HandleSegment(Interface& iface, const Ipv4Header& ip,
                               std::unique_ptr<IOBuf> segment) {
  if (segment->Length() < sizeof(TcpHeader)) {
    return;
  }
  // Verify the TCP checksum over pseudo-header + segment.
  {
    ChecksumAccumulator acc;
    AddPseudo(acc, ip.SrcAddr(), ip.DstAddr(),
              static_cast<std::uint16_t>(segment->ComputeChainDataLength()));
    acc.AddChain(*segment);
    if (acc.Finish() != 0) {
      network_.stats().checksum_drops.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  TcpHeader tcp = segment->Get<TcpHeader>();
  std::size_t header_len = tcp.HeaderLength();
  if (header_len < sizeof(TcpHeader) || header_len > segment->Length()) {
    return;
  }
  segment->Advance(header_len);

  FourTuple tuple{ip.DstAddr(), NetToHost16(tcp.dst_port), ip.SrcAddr(),
                  NetToHost16(tcp.src_port)};
  auto* found = table_.Find(tuple);
  if (found != nullptr) {
    std::shared_ptr<TcpEntry> entry = *found;  // own it within this event
    if (CurrentContext().machine_core != entry->owner_core) {
      // RSS normally guarantees affinity; fall back to shipping the segment to the owner.
      auto shared_seg = std::make_shared<std::unique_ptr<IOBuf>>(std::move(segment));
      event::Local().SpawnRemote(
          [this, entry, tcp, shared_seg]() mutable {
            ProcessSegment(entry, tcp, std::move(*shared_seg));
          },
          entry->owner_core);
      return;
    }
    ProcessSegment(std::move(entry), tcp, std::move(segment));
    return;
  }
  if ((tcp.flags & kTcpSyn) && !(tcp.flags & kTcpAck)) {
    HandleSyn(iface, ip, tcp);
    return;
  }
  // No state, not a SYN: silently drop (stale segment after close).
}

void TcpManager::HandleSyn(Interface& iface, const Ipv4Header& ip, const TcpHeader& tcp) {
  auto* listener = listeners_.Find(NetToHost16(tcp.dst_port));
  if (listener == nullptr) {
    return;  // no RST machinery needed for closed ports in the testbed
  }
  std::shared_ptr<Listener> l = *listener;
  FourTuple tuple{ip.DstAddr(), NetToHost16(tcp.dst_port), ip.SrcAddr(),
                  NetToHost16(tcp.src_port)};
  // The connection's state is owned by the core the SYN landed on (RSS steering): this core.
  auto entry = std::make_shared<TcpEntry>(*this, iface, tuple,
                                          CurrentContext().machine_core);
  std::uint32_t iss = NextIss();
  entry->state = TcpState::kSynReceived;
  entry->snd_una = iss;
  entry->snd_nxt = iss + 1;
  entry->rcv_nxt = NetToHost32(tcp.seq) + 1;
  entry->snd_wnd = NetToHost16(tcp.window);
  entry->on_established = [l](TcpPcb pcb) { l->accept(std::move(pcb)); };
  if (!table_.Insert(tuple, entry)) {
    return;  // duplicate SYN racing an existing connection
  }
  TcpEntry::RtxSeg seg;
  seg.seq = iss;
  seg.len = 1;
  seg.flags = kTcpSyn | kTcpAck;
  entry->rtx_queue.push_back(std::move(seg));
  TransmitSegment(*entry, kTcpSyn | kTcpAck, nullptr, iss, false);
  ArmRtxTimer(*entry);
}

void TcpManager::DeliverInOrder(TcpEntry& entry, std::unique_ptr<IOBuf> payload,
                                std::uint8_t flags) {
  std::size_t len = payload ? payload->ComputeChainDataLength() : 0;
  if (len > 0) {
    entry.rcv_nxt += static_cast<std::uint32_t>(len);
    entry.pending_ack = true;
    if (entry.handler != nullptr) {
      // Zero-copy delivery: the application receives the device-filled buffer, header-
      // stripped, synchronously from the driver event (§3.6: no stack buffering).
      entry.handler->Receive(std::move(payload));
    }
  }
  // Drain any parked out-of-order segments that are now in order.
  while (!entry.ooo.empty()) {
    auto it = entry.ooo.begin();
    if (it->first != entry.rcv_nxt) {
      if (SeqLt(it->first, entry.rcv_nxt)) {
        entry.ooo.erase(it);  // stale overlap
        continue;
      }
      break;
    }
    std::unique_ptr<IOBuf> next = std::move(it->second);
    entry.ooo.erase(it);
    std::size_t next_len = next->ComputeChainDataLength();
    entry.rcv_nxt += static_cast<std::uint32_t>(next_len);
    entry.pending_ack = true;
    if (entry.handler != nullptr) {
      entry.handler->Receive(std::move(next));
    }
  }
  (void)flags;
}

void TcpManager::EnterTimeWait(std::shared_ptr<TcpEntry> entry) {
  entry->state = TcpState::kTimeWait;
  if (entry->time_wait_timer != 0) {
    return;
  }
  entry->time_wait_timer = Timer::Instance()->Start(kTimeWaitNs, [this, entry] {
    entry->time_wait_timer = 0;
    entry->state = TcpState::kClosed;
    RemoveEntry(*entry);
  });
}

void TcpManager::SendAckIfPending(TcpEntry& entry) {
  if (entry.pending_ack && entry.state != TcpState::kClosed) {
    TransmitSegment(entry, kTcpAck, nullptr, entry.snd_nxt, false);
  }
}

void TcpManager::ProcessSegment(std::shared_ptr<TcpEntry> entry, const TcpHeader& tcp,
                                std::unique_ptr<IOBuf> payload) {
  TcpEntry& e = *entry;
  if (e.state == TcpState::kClosed) {
    return;
  }
  std::uint32_t seq = NetToHost32(tcp.seq);
  std::uint32_t ack = NetToHost32(tcp.ack);
  std::size_t payload_len = payload->ComputeChainDataLength();

  if (tcp.flags & kTcpRst) {
    e.state = TcpState::kClosed;
    if (e.connect_pending) {
      e.connect_pending = false;
      e.connected.SetException(
          std::make_exception_ptr(std::runtime_error("tcp: connection reset")));
    }
    if (e.handler != nullptr) {
      e.handler->Abort();
    }
    RemoveEntry(e);
    return;
  }

  // --- ACK processing -------------------------------------------------------------------
  if (tcp.flags & kTcpAck) {
    if (SeqLt(e.snd_una, ack) && SeqLe(ack, e.snd_nxt)) {
      e.snd_una = ack;
      while (!e.rtx_queue.empty()) {
        TcpEntry::RtxSeg& seg = e.rtx_queue.front();
        if (SeqLe(seg.seq + seg.len, ack)) {
          e.rtx_queue.pop_front();
        } else {
          break;
        }
      }
      e.rtx_backoff = 0;
      if (e.rtx_timer != 0) {
        Timer::Instance()->Stop(e.rtx_timer);
        e.rtx_timer = 0;
      }
      ArmRtxTimer(e);
      e.snd_wnd = NetToHost16(tcp.window);
      // A window-limited flush left corked data behind: ACK progress is the signal to drain
      // more of it (ahead of SendReady, so the application observes bytes in flight order).
      // Skip while the entry awaits its event-boundary flush (batcher_enrolled) — an ACK
      // carried by a later frame of the SAME event must not flush mid-event — and while a
      // manual cork is open (FlushCorked also honors that itself).
      if (!e.cork_queue.Empty() && !e.batcher_enrolled) {
        FlushCorked(e);
      }
      if (e.handler != nullptr && (e.snd_nxt - e.snd_una) < e.snd_wnd) {
        // Acknowledgment progress: give the application (or the baseline kernel pump, which
        // implements Nagle on top of this) a send opportunity.
        e.handler->SendReady();
      }
    } else {
      e.snd_wnd = NetToHost16(tcp.window);  // window update on duplicate ACK
      if (!e.cork_queue.Empty() && !e.batcher_enrolled) {
        FlushCorked(e);  // a pure window update can reopen a clamped window
      }
    }

    // Handshake / close-sequence transitions driven by this ACK.
    switch (e.state) {
      case TcpState::kSynSent:
        if ((tcp.flags & kTcpSyn) && ack == e.snd_nxt) {
          e.rcv_nxt = seq + 1;
          e.state = TcpState::kEstablished;
          e.snd_wnd = NetToHost16(tcp.window);
          e.rtx_queue.clear();
          TransmitSegment(e, kTcpAck, nullptr, e.snd_nxt, false);
          if (e.connect_pending) {
            e.connect_pending = false;
            e.connected.SetValue();
          }
        }
        return;  // SYN-ACK carries no data
      case TcpState::kSynReceived:
        if (ack == e.snd_nxt) {
          e.state = TcpState::kEstablished;
          e.rtx_queue.clear();
          if (e.on_established) {
            auto fn = std::move(e.on_established);
            e.on_established = nullptr;
            fn(TcpPcb(entry));
          }
        }
        break;
      case TcpState::kFinWait1:
        if (e.fin_sent && ack == e.snd_nxt) {
          e.state = TcpState::kFinWait2;
        }
        break;
      case TcpState::kClosing:
        if (e.fin_sent && ack == e.snd_nxt) {
          EnterTimeWait(entry);
        }
        break;
      case TcpState::kLastAck:
        if (e.fin_sent && ack == e.snd_nxt) {
          e.state = TcpState::kClosed;
          RemoveEntry(e);
          return;
        }
        break;
      default:
        break;
    }
  }

  // --- Data / FIN processing -------------------------------------------------------------
  bool fin = (tcp.flags & kTcpFin) != 0;
  if (payload_len == 0 && !fin) {
    SendAckIfPending(e);
    return;
  }
  if (seq == e.rcv_nxt) {
    DeliverInOrder(e, payload_len > 0 ? std::move(payload) : nullptr, tcp.flags);
    if (fin) {
      // Only honor the FIN once all preceding data has been consumed (in-order point).
      e.rcv_nxt += 1;
      e.pending_ack = true;
      switch (e.state) {
        case TcpState::kEstablished:
          e.state = TcpState::kCloseWait;
          if (e.handler != nullptr) {
            e.handler->Close();
          }
          break;
        case TcpState::kFinWait1:
          if (e.fin_sent && SeqLe(e.snd_nxt, e.snd_una)) {
            EnterTimeWait(entry);
          } else {
            e.state = TcpState::kClosing;
          }
          break;
        case TcpState::kFinWait2:
          EnterTimeWait(entry);
          break;
        default:
          break;
      }
    }
  } else if (SeqLt(e.rcv_nxt, seq)) {
    // Out of order: park (bounded) and duplicate-ACK to prompt retransmission.
    if (payload_len > 0 && e.ooo.size() < TcpEntry::kMaxOoo) {
      e.ooo.emplace(seq, std::move(payload));
    }
    e.pending_ack = true;
  } else {
    // Duplicate/overlapping old data: re-acknowledge.
    e.pending_ack = true;
  }
  SendAckIfPending(e);
}

}  // namespace ebbrt
