#include "src/net/tx_batcher.h"

#include <utility>

#include "src/event/event_manager.h"

namespace ebbrt {

void TxBatcher::Enroll(std::shared_ptr<TcpEntry> entry) {
  Kassert(CurrentContext().machine_core == entry->owner_core, "TxBatcher: wrong core");
  if (entry->batcher_enrolled) {
    return;
  }
  entry->batcher_enrolled = true;
  ++enrollments_;
  pending_.push_back(std::move(entry));
  if (!hook_queued_) {
    hook_queued_ = true;
    event::Local().QueueEndOfEvent([this] { Flush(); });
  }
}

void TxBatcher::Flush() {
  hook_queued_ = false;
  ++flushes_;
  // Swap out the batch: FlushCorked can run application-visible paths (a deferred Close's
  // FIN) that might Send again; those re-enroll into a fresh list and get their own hook
  // (drained in the same event-boundary pass by the EventManager).
  std::vector<std::shared_ptr<TcpEntry>> batch;
  batch.swap(pending_);
  for (std::shared_ptr<TcpEntry>& entry : batch) {
    entry->batcher_enrolled = false;
    tcp_.FlushCorked(*entry);
  }
}

}  // namespace ebbrt
