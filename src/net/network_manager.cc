#include "src/net/network_manager.h"

#include "src/event/timer.h"
#include "src/net/tcp.h"

namespace ebbrt {

// --- Checksum ---------------------------------------------------------------------------------

void ChecksumAccumulator::Add(const void* data, std::size_t len) {
  auto* p = static_cast<const std::uint8_t*>(data);
  if (odd_ && len > 0) {
    // Previous chunk ended on an odd byte: this byte is the low half of that 16-bit word.
    sum_ += static_cast<std::uint32_t>(*p) << 8;
    ++p;
    --len;
    odd_ = false;
  }
  while (len > 1) {
    std::uint16_t word;
    std::memcpy(&word, p, 2);
    sum_ += word;
    p += 2;
    len -= 2;
  }
  if (len == 1) {
    sum_ += *p;
    odd_ = true;
  }
  while (sum_ >> 16) {
    sum_ = (sum_ & 0xffff) + (sum_ >> 16);
  }
}

void ChecksumAccumulator::AddChain(const IOBuf& chain) {
  for (const IOBuf* buf = &chain; buf != nullptr; buf = buf->Next()) {
    Add(buf->Data(), buf->Length());
  }
}

std::uint16_t ChecksumAccumulator::Finish() const {
  return static_cast<std::uint16_t>(~sum_ & 0xffff);
}

namespace {

// Pseudo-header contribution for UDP/TCP checksums.
void AddPseudoHeader(ChecksumAccumulator& acc, Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
                     std::uint16_t l4_len) {
  struct {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint8_t zero;
    std::uint8_t proto;
    std::uint16_t len;
  } __attribute__((packed)) pseudo;
  pseudo.src = HostToNet32(src.raw);
  pseudo.dst = HostToNet32(dst.raw);
  pseudo.zero = 0;
  pseudo.proto = proto;
  pseudo.len = HostToNet16(l4_len);
  acc.Add(&pseudo, sizeof(pseudo));
}

}  // namespace

namespace net_internal {

void FillIpv4(IOBuf& buf, Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
              std::size_t l4_header_len, std::size_t payload_len) {
  std::size_t headers = sizeof(Ipv4Header) + l4_header_len;
  auto& ip = buf.Get<Ipv4Header>();
  ip.version_ihl = 0x45;
  ip.dscp_ecn = 0;
  ip.total_length = HostToNet16(static_cast<std::uint16_t>(headers + payload_len));
  ip.identification = 0;
  ip.flags_fragment = HostToNet16(0x4000);  // DF
  ip.ttl = 64;
  ip.protocol = proto;
  ip.checksum = 0;
  ip.src = HostToNet32(src.raw);
  ip.dst = HostToNet32(dst.raw);
  ip.checksum = InternetChecksum(&ip, sizeof(Ipv4Header));
}

}  // namespace net_internal

// --- Stats: datapath allocation accounting ------------------------------------------------------

void NetworkManager::Stats::MarkAllocBaseline() {
  const mem::Stats& m = mem::stats();
  alloc_mark_heap = m.heap_fallback_allocs.load(std::memory_order_relaxed);
  alloc_mark_iobuf = m.iobuf_allocs.load(std::memory_order_relaxed);
  alloc_mark_pool_hits = m.pool_hits.load(std::memory_order_relaxed);
  alloc_mark_pool_misses = m.pool_misses.load(std::memory_order_relaxed);
}

std::uint64_t NetworkManager::Stats::heap_allocs_since_mark() const {
  return mem::stats().heap_fallback_allocs.load(std::memory_order_relaxed) - alloc_mark_heap;
}

std::uint64_t NetworkManager::Stats::iobuf_allocs_since_mark() const {
  return mem::stats().iobuf_allocs.load(std::memory_order_relaxed) - alloc_mark_iobuf;
}

double NetworkManager::Stats::allocs_per_op(std::uint64_t requests) const {
  if (requests == 0) {
    return 0.0;
  }
  return static_cast<double>(heap_allocs_since_mark()) / static_cast<double>(requests);
}

std::uint64_t NetworkManager::Stats::pool_hits_since_mark() const {
  return mem::stats().pool_hits.load(std::memory_order_relaxed) - alloc_mark_pool_hits;
}

std::uint64_t NetworkManager::Stats::pool_misses_since_mark() const {
  return mem::stats().pool_misses.load(std::memory_order_relaxed) - alloc_mark_pool_misses;
}

double NetworkManager::Stats::pool_hit_rate_since_mark() const {
  std::uint64_t hits = pool_hits_since_mark();
  std::uint64_t misses = pool_misses_since_mark();
  return hits + misses == 0 ? 0.0
                            : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

// --- NetworkManager ----------------------------------------------------------------------------

NetworkManager& NetworkManager::For(Runtime& runtime) {
  auto* mgr = runtime.TryGetSubsystem<NetworkManager>(Subsystem::kNetworkManager);
  if (mgr == nullptr) {
    mgr = new NetworkManager(runtime);
    runtime.SetSubsystem(Subsystem::kNetworkManager, mgr);
    runtime.InstallRoot(kNetworkManagerId, mgr);
  }
  return *mgr;
}

NetworkManager::NetworkManager(Runtime& runtime)
    : runtime_(runtime),
      rcu_(RcuManagerRoot::For(runtime)),
      arp_cache_(rcu_, 6),
      udp_bindings_(rcu_, 6),
      tcp_(std::make_unique<TcpManager>(*this)) {}

NetworkManager::~NetworkManager() = default;

Interface& NetworkManager::AddInterface(sim::Nic& nic, Interface::IpConfig config) {
  interfaces_.push_back(std::make_unique<Interface>(*this, nic, config));
  return *interfaces_.back();
}

void NetworkManager::BindUdp(std::uint16_t port, UdpHandler handler) {
  udp_bindings_.InsertOrReplace(port, std::make_shared<UdpHandler>(std::move(handler)));
}

void NetworkManager::UnbindUdp(std::uint16_t port) { udp_bindings_.Erase(port); }

Future<void> NetworkManager::SendUdp(Ipv4Addr dst, std::uint16_t src_port,
                                     std::uint16_t dst_port, std::unique_ptr<IOBuf> data) {
  Interface& iface = interface();
  std::size_t payload_len = data->ComputeChainDataLength();
  auto packet =
      net_internal::BuildIpv4<sizeof(UdpHeader)>(iface.addr(), dst, kIpProtoUdp, payload_len);
  auto& udp = packet->Get<UdpHeader>(sizeof(Ipv4Header));
  std::uint16_t udp_len = static_cast<std::uint16_t>(sizeof(UdpHeader) + payload_len);
  udp.src_port = HostToNet16(src_port);
  udp.dst_port = HostToNet16(dst_port);
  udp.length = HostToNet16(udp_len);
  udp.checksum = 0;
  ChecksumAccumulator acc;
  AddPseudoHeader(acc, iface.addr(), dst, kIpProtoUdp, udp_len);
  acc.Add(&udp, sizeof(UdpHeader));
  acc.AddChain(*data);
  std::uint16_t csum = acc.Finish();
  udp.checksum = csum == 0 ? 0xffff : csum;
  packet->AppendChain(std::move(data));
  return iface.EthArpSend(kEthTypeIpv4, std::move(packet));
}

void NetworkManager::HandleUdp(Interface& iface, const Ipv4Header& ip,
                               std::unique_ptr<IOBuf> datagram) {
  if (datagram->Length() < sizeof(UdpHeader)) {
    stats_.udp_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto& udp = datagram->Get<UdpHeader>();
  std::uint16_t dst_port = NetToHost16(udp.dst_port);
  std::uint16_t src_port = NetToHost16(udp.src_port);
  std::uint16_t udp_len = NetToHost16(udp.length);
  if (udp_len < sizeof(UdpHeader) || udp_len > datagram->Length()) {
    stats_.udp_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  datagram->TrimEnd(datagram->Length() - udp_len);
  auto* handler = udp_bindings_.Find(dst_port);
  if (handler == nullptr) {
    stats_.udp_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stats_.udp_rx.fetch_add(1, std::memory_order_relaxed);
  // Copy the shared handler inside the read-side section, then strip the header and deliver.
  std::shared_ptr<UdpHandler> fn = *handler;
  datagram->Advance(sizeof(UdpHeader));
  (*fn)(ip.SrcAddr(), src_port, std::move(datagram));
}

// --- Interface ----------------------------------------------------------------------------------

Interface::Interface(NetworkManager& manager, sim::Nic& nic, IpConfig config)
    : manager_(manager), nic_(nic), config_(config) {
  nic_.SetReceiveHandler([this](std::unique_ptr<IOBuf> frame) { Receive(std::move(frame)); });
}

Future<MacAddr> Interface::ArpFind(Ipv4Addr dest) {
  if (dest.IsBroadcast()) {
    return MakeReadyFuture<MacAddr>(MacAddr::Broadcast());
  }
  // Fast path: cache hit resolves synchronously (Figure 2's cached-translation case).
  MacAddr* cached = manager_.arp_cache().Find(dest.raw);
  if (cached != nullptr) {
    return MakeReadyFuture<MacAddr>(*cached);
  }
  Promise<MacAddr> promise;
  Future<MacAddr> future = promise.GetFuture();
  bool first;
  {
    std::lock_guard<Spinlock> lock(manager_.arp_mu());
    auto& waiters = manager_.arp_pending()[dest.raw];
    first = waiters.empty();
    waiters.push_back(std::move(promise));
  }
  if (first) {
    SendArpRequest(dest);
    ScheduleArpRetry(dest, 1);
  }
  return future;
}

void Interface::ScheduleArpRetry(Ipv4Addr target, int attempt) {
  constexpr std::uint64_t kArpRetryNs = 2'000'000;  // 2 ms
  constexpr int kMaxArpAttempts = 10;
  Timer::Instance()->Start(kArpRetryNs, [this, target, attempt] {
    std::vector<Promise<MacAddr>> waiters;
    bool still_pending = false;
    {
      std::lock_guard<Spinlock> lock(manager_.arp_mu());
      auto it = manager_.arp_pending().find(target.raw);
      if (it != manager_.arp_pending().end()) {
        if (attempt >= kMaxArpAttempts) {
          waiters = std::move(it->second);
          manager_.arp_pending().erase(it);
        } else {
          still_pending = true;
        }
      }
    }
    if (still_pending) {
      SendArpRequest(target);
      ScheduleArpRetry(target, attempt + 1);
      return;
    }
    for (auto& promise : waiters) {
      promise.SetException(
          std::make_exception_ptr(std::runtime_error("arp: no reply from " +
                                                     target.ToString())));
    }
  });
}

// The paper's Figure 2, modulo naming: route, resolve, fill the Ethernet header in reserved
// headroom, transmit. On ARP cache hits the lambda runs before EthArpSend returns.
Future<void> Interface::EthArpSend(std::uint16_t proto, std::unique_ptr<IOBuf> packet) {
  const auto& ip_header = packet->Get<Ipv4Header>();
  Ipv4Addr local_dest = Route(ip_header.DstAddr());
  Future<MacAddr> future_macaddr = ArpFind(local_dest);
  sim::Nic* nic = &nic_;
  MacAddr src = mac();
  return future_macaddr.Then(
      [packet = std::move(packet), proto, nic, src](Future<MacAddr> f) mutable {
        packet->Retreat(sizeof(EthernetHeader));
        auto& eth = packet->Get<EthernetHeader>();
        eth.dst = f.Get();
        eth.src = src;
        eth.type = HostToNet16(proto);
        nic->Transmit(std::move(packet));
      });
}

void Interface::SendArpRequest(Ipv4Addr target) {
  auto frame = IOBuf::Create(sizeof(EthernetHeader) + sizeof(ArpPacket), /*zero=*/true);
  auto& eth = frame->Get<EthernetHeader>();
  eth.dst = MacAddr::Broadcast();
  eth.src = mac();
  eth.type = HostToNet16(kEthTypeArp);
  auto& arp = frame->Get<ArpPacket>(sizeof(EthernetHeader));
  arp.htype = HostToNet16(1);
  arp.ptype = HostToNet16(kEthTypeIpv4);
  arp.hlen = 6;
  arp.plen = 4;
  arp.oper = HostToNet16(kArpOpRequest);
  arp.sha = mac();
  arp.spa = HostToNet32(config_.addr.raw);
  arp.tha = MacAddr{};
  arp.tpa = HostToNet32(target.raw);
  nic_.Transmit(std::move(frame));
}

void Interface::Receive(std::unique_ptr<IOBuf> frame) {
  if (frame->Length() < sizeof(EthernetHeader)) {
    return;
  }
  const auto& eth = frame->Get<EthernetHeader>();
  switch (NetToHost16(eth.type)) {
    case kEthTypeArp:
      ReceiveArp(std::move(frame));
      break;
    case kEthTypeIpv4:
      ReceiveIpv4(std::move(frame));
      break;
    default:
      break;  // unknown ethertype: drop
  }
}

void Interface::ReceiveArp(std::unique_ptr<IOBuf> frame) {
  if (frame->Length() < sizeof(EthernetHeader) + sizeof(ArpPacket)) {
    return;
  }
  manager_.stats().arp_rx.fetch_add(1, std::memory_order_relaxed);
  const auto& arp = frame->Get<ArpPacket>(sizeof(EthernetHeader));
  Ipv4Addr sender{NetToHost32(arp.spa)};
  MacAddr sender_mac = arp.sha;
  // Learn the sender's mapping and resolve any waiters.
  manager_.arp_cache().InsertOrReplace(sender.raw, sender_mac);
  std::vector<Promise<MacAddr>> waiters;
  {
    std::lock_guard<Spinlock> lock(manager_.arp_mu());
    auto it = manager_.arp_pending().find(sender.raw);
    if (it != manager_.arp_pending().end()) {
      waiters = std::move(it->second);
      manager_.arp_pending().erase(it);
    }
  }
  for (auto& promise : waiters) {
    promise.SetValue(sender_mac);  // continuations (pending sends) run here, synchronously
  }
  if (NetToHost16(arp.oper) == kArpOpRequest &&
      Ipv4Addr{NetToHost32(arp.tpa)} == config_.addr) {
    auto reply = IOBuf::Create(sizeof(EthernetHeader) + sizeof(ArpPacket), /*zero=*/true);
    auto& eth = reply->Get<EthernetHeader>();
    eth.dst = sender_mac;
    eth.src = mac();
    eth.type = HostToNet16(kEthTypeArp);
    auto& out = reply->Get<ArpPacket>(sizeof(EthernetHeader));
    out.htype = HostToNet16(1);
    out.ptype = HostToNet16(kEthTypeIpv4);
    out.hlen = 6;
    out.plen = 4;
    out.oper = HostToNet16(kArpOpReply);
    out.sha = mac();
    out.spa = HostToNet32(config_.addr.raw);
    out.tha = sender_mac;
    out.tpa = arp.spa;
    nic_.Transmit(std::move(reply));
  }
}

void Interface::ReceiveIpv4(std::unique_ptr<IOBuf> frame) {
  if (frame->Length() < sizeof(EthernetHeader) + sizeof(Ipv4Header)) {
    return;
  }
  frame->Advance(sizeof(EthernetHeader));
  Ipv4Header ip = frame->Get<Ipv4Header>();  // copy: the view advances below
  std::size_t header_len = ip.HeaderLength();
  std::uint16_t total_len = NetToHost16(ip.total_length);
  if (header_len < sizeof(Ipv4Header) || total_len < header_len ||
      total_len > frame->Length()) {
    return;
  }
  if (InternetChecksum(frame->Data(), header_len) != 0) {
    manager_.stats().checksum_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!(ip.DstAddr() == config_.addr) && !ip.DstAddr().IsBroadcast()) {
    return;  // not for us
  }
  manager_.stats().ip_rx.fetch_add(1, std::memory_order_relaxed);
  frame->TrimEnd(frame->Length() - total_len);
  frame->Advance(header_len);
  switch (ip.protocol) {
    case kIpProtoUdp:
      manager_.HandleUdp(*this, ip, std::move(frame));
      break;
    case kIpProtoTcp:
      manager_.stats().tcp_rx.fetch_add(1, std::memory_order_relaxed);
      manager_.tcp().HandleSegment(*this, ip, std::move(frame));
      break;
    default:
      break;
  }
}

}  // namespace ebbrt
