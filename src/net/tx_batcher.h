// TxBatcher — event-scoped TX send aggregation (the paper's §5 argument, built in).
//
// EbbRT's TCP is deliberately Nagle-free: Send() puts segments on the wire immediately, and
// aggregation is the application's decision. A run-to-completion server, though, produces its
// aggregation opportunity *structurally*: every response generated while handling one device
// event (a pipelined request burst parsed from one segment) is known to be ready by the time
// that event ends. The TxBatcher exploits exactly that boundary — no timers, no heuristic
// delay, no added latency:
//
//   * A connection opts in with TcpPcb::SetAutoCork(true). Its Send() calls append to a
//     per-connection cork chain instead of emitting a segment each.
//   * The first corked send of an event enrolls the connection here; the batcher queues ONE
//     EventManager end-of-event hook for the dispatch in progress.
//   * When the handler returns control to the loop, the hook flushes every enrolled
//     connection once: the cork chain goes through the normal segmenting path, so k small
//     writes leave as ceil(bytes/MSS) wire segments instead of k.
//
// One batcher per (machine, core): enrollment and flush both run on the connection's owner
// core, so there is no synchronization anywhere — the pending list is plain core-local state.
// The batcher holds shared_ptr references to enrolled entries, so a connection torn down
// between enrollment and flush is still safe to inspect; FlushCorked then *drops* its corked
// chain rather than transmitting into a dead connection.
#ifndef EBBRT_SRC_NET_TX_BATCHER_H_
#define EBBRT_SRC_NET_TX_BATCHER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/tcp.h"

namespace ebbrt {

class TxBatcher {
 public:
  explicit TxBatcher(TcpManager& tcp) : tcp_(tcp) {}

  TxBatcher(const TxBatcher&) = delete;
  TxBatcher& operator=(const TxBatcher&) = delete;

  // Registers `entry` for the event-boundary flush (idempotent per event). Called by
  // TcpPcb::Send on the entry's owner core, from within the dispatching event.
  void Enroll(std::shared_ptr<TcpEntry> entry);

  // The end-of-event hook body: flushes every enrolled connection exactly once.
  void Flush();

  // Observability for the flush-once-per-event invariant.
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t enrollments() const { return enrollments_; }

 private:
  TcpManager& tcp_;
  std::vector<std::shared_ptr<TcpEntry>> pending_;
  bool hook_queued_ = false;
  std::uint64_t flushes_ = 0;
  std::uint64_t enrollments_ = 0;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_NET_TX_BATCHER_H_
