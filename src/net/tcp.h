// TCP for the EbbRT stack (§3.6).
//
// Deliberate departures from a general-purpose OS TCP, straight from the paper:
//
//   * NO stack-side buffering in either direction. Received in-order bytes are handed to the
//     application immediately, from the driver's event, on the connection's core. On the send
//     side the application must check SendWindowRemaining() before Send() — the stack never
//     queues application data waiting for window (out-of-window sends are rejected).
//   * NO Nagle. Send() puts segments on the wire immediately; aggregation is an application
//     decision ("This allows the application to decide whether or not to delay sending to
//     aggregate multiple sends into a single TCP segment"). That application-side aggregation
//     is a first-class mechanism here: Cork()/Uncork() batch explicitly, and SetAutoCork()
//     opts a connection into event-scoped batching — every Send() issued during one event
//     dispatch is merged into one chain and flushed once at the event boundary (TxBatcher +
//     the EventManager end-of-event hook), merging small writes into as few wire segments as
//     the send window allows. Corked bytes are bounded by the send window (Send still
//     refuses beyond it), so this is aggregation, not a kernel-style send buffer.
//   * The application controls the advertised receive window (SetReceiveWindow) — its own
//     admission control, not a kernel buffer size.
//   * Connection state lives on exactly one core (where the SYN landed / where the connector
//     arranged its flow hash to land). Lookups go through an RCU hash table; the data path
//     takes no locks and no atomics.
//
// Every connection consumer — application, uv layer, baseline socket shim — attaches through
// ONE abstraction: TcpHandler. The stack invokes its virtuals directly from the device event,
// so per-connection dispatch costs a vtable load instead of three heap-allocated
// std::function objects, and the datapath invariants (run-to-completion on the owner core,
// zero-copy views) are enforced in exactly one place.
//
// Reliability machinery kept for correctness (exercised by the packet-loss tests): go-back-N
// retransmission with exponential backoff, out-of-order segment parking, TIME_WAIT.
#ifndef EBBRT_SRC_NET_TCP_H_
#define EBBRT_SRC_NET_TCP_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/future/future.h"
#include "src/iobuf/iobuf.h"
#include "src/iobuf/iobuf_queue.h"
#include "src/net/net_types.h"
#include "src/rcu/rcu_hash_table.h"

namespace ebbrt {

class NetworkManager;
class Interface;
class TcpManager;
class TcpPcb;
class TcpEntry;
class TcpHandler;
class TxBatcher;

inline constexpr std::size_t kTcpMss = 1460;
inline constexpr std::uint16_t kTcpDefaultWindow = 65535;

enum class TcpState : std::uint8_t {
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
  kClosed,
};

// Application handle to a connection. Methods must be called on the connection's core.
class TcpPcb {
 public:
  TcpPcb() = default;
  explicit TcpPcb(std::shared_ptr<TcpEntry> entry) : entry_(std::move(entry)) {}

  bool valid() const { return entry_ != nullptr; }
  std::size_t core() const;
  FourTuple tuple() const;
  TcpState state() const;

  // --- Connection consumer -----------------------------------------------------------------
  // Installs the connection's handler. Exactly one handler is attached at a time; installing
  // replaces any previous one. Three ownership flavors:
  //   * raw pointer     — caller manages the handler's lifetime (it must outlive the pcb);
  //   * unique_ptr      — the connection owns the handler and destroys it (deferred to its
  //                       own event) when the connection is removed;
  //   * shared_ptr      — the connection anchors a reference until removal (for handlers
  //                       whose lifetime is shared with application code, e.g. uv streams).
  void InstallHandler(TcpHandler* handler);
  void InstallHandler(std::unique_ptr<TcpHandler> handler);
  void InstallHandler(std::shared_ptr<TcpHandler> handler);

  // Application-controlled advertised window (§3.6: "an application can explicitly set the
  // window size to prevent further sends from the remote host").
  void SetReceiveWindow(std::uint16_t window);

  // Bytes the peer+our outstanding data currently allow us to send, net of any corked bytes
  // awaiting flush. The application must check this before Send (paper contract); Send
  // returns false when violated — whether corked or not, total buffered+in-flight data never
  // exceeds one send window.
  std::size_t SendWindowRemaining() const;
  // Unacknowledged bytes currently in flight (used by the baseline stack's Nagle check).
  std::size_t BytesInFlight() const;
  bool Send(std::unique_ptr<IOBuf> chain);

  // --- TX corking (the paper's application-level send aggregation, made a mechanism) -------
  // While corked, Send() appends to a per-connection chain instead of emitting segments;
  // Uncork() at nesting depth zero flushes the chain through the normal segmenting path, so
  // k small writes leave as ceil(bytes/MSS) segments instead of k. Nestable.
  void Cork();
  void Uncork();
  bool Corked() const;
  std::size_t CorkedBytes() const;
  // Event-scoped automatic corking: every Send() outside a manual cork is accumulated and
  // flushed exactly once when the current event dispatch ends (TxBatcher; the flush is also
  // resumed by ACK-driven window openings when a flush was window-limited).
  void SetAutoCork(bool enabled);

  void Close();
  // Unilateral teardown: emits RST, drops any corked (unflushed) data, removes the
  // connection immediately. The local handler is NOT called back.
  void Abort();

 private:
  std::shared_ptr<TcpEntry> entry_;
};

// The per-connection consumer interface — the unified zero-copy datapath's application edge.
// The stack calls these synchronously from the device event on the connection's owner core;
// implementations run to completion (no blocking, no migration). `Pcb()` is bound at install
// time, so a handler is a self-contained connection object: state, parsing, and the send
// side all hang off one vtable.
class TcpHandler {
 public:
  virtual ~TcpHandler() = default;

  // In-order payload, the moment it arrives (ownership transferred). The chain is the very
  // buffer the (simulated) DMA engine filled, headers already Advance()d past.
  virtual void Receive(std::unique_ptr<IOBuf> buf) = 0;
  // Peer closed its side (FIN at the in-order point).
  virtual void Close() {}
  // ACKs opened send window that was previously exhausted — resume application pacing.
  virtual void SendReady() {}
  // Connection torn down abnormally (RST, retransmission give-up). Defaults to Close().
  virtual void Abort() { Close(); }

  TcpPcb& Pcb() { return pcb_; }
  const TcpPcb& Pcb() const { return pcb_; }

 private:
  friend class TcpPcb;
  TcpPcb pcb_;
};

// Internal per-connection state. All fields are owned by `owner_core`; only that core touches
// them (the RSS steering invariant). Applications hold it through TcpPcb.
class TcpEntry {
 public:
  TcpEntry(TcpManager& manager, Interface& iface, FourTuple tuple, std::size_t owner_core);

  TcpManager& manager;
  Interface& iface;
  FourTuple tuple;
  std::size_t owner_core;
  TcpState state = TcpState::kClosed;

  // Send sequence space.
  std::uint32_t snd_una = 0;  // oldest unacknowledged
  std::uint32_t snd_nxt = 0;  // next to send
  std::uint32_t snd_wnd = kTcpDefaultWindow;  // peer's advertised window
  // Receive sequence space.
  std::uint32_t rcv_nxt = 0;
  std::uint16_t rcv_wnd = kTcpDefaultWindow;  // our advertisement (application-controlled)

  // The connection's consumer. `handler` is the dispatch pointer (hot path); the other two
  // fields carry whatever ownership the installer transferred (see TcpPcb::InstallHandler).
  TcpHandler* handler = nullptr;
  std::unique_ptr<TcpHandler> owned_handler;
  std::shared_ptr<void> handler_anchor;

  // Retransmission queue: unacked segments with owning payload copies (retransmit is the rare
  // path; the fast path transmits zero-copy views of application memory).
  struct RtxSeg {
    std::uint32_t seq;
    std::uint32_t len;  // payload bytes (+1 virtual byte for SYN/FIN)
    std::uint8_t flags;
    std::unique_ptr<IOBuf> payload;    // views into `owner`; cloned only on retransmit
    std::shared_ptr<IOBuf> owner;      // keeps the application chain alive until acked
  };
  std::deque<RtxSeg> rtx_queue;
  std::uint64_t rtx_timer = 0;  // Timer handle, 0 when unarmed
  std::uint32_t rtx_backoff = 0;

  // Out-of-order segments parked until the gap fills (bounded).
  std::map<std::uint32_t, std::unique_ptr<IOBuf>> ooo;
  static constexpr std::size_t kMaxOoo = 64;

  bool pending_ack = false;   // a received segment needs acknowledging
  bool app_closed = false;
  bool fin_sent = false;
  bool removed = false;       // RemoveEntry already ran (guards re-entry on abort paths)
  std::uint64_t time_wait_timer = 0;

  // --- TX corking state (see TcpPcb::Cork/SetAutoCork) -------------------------------------
  IOBufQueue cork_queue;           // corked payload awaiting flush (bounded by the window)
  std::uint32_t cork_count = 0;    // manual Cork() nesting depth
  bool auto_cork = false;          // Send() corks automatically, flushed at event boundary
  bool batcher_enrolled = false;   // registered with the owner core's TxBatcher this event
  bool close_after_flush = false;  // app Close() with data corked: FIN follows the data

  Promise<void> connected;  // fulfilled for active opens
  bool connect_pending = false;
  std::function<void(TcpPcb)> on_established;  // passive opens: listener's accept callback
};

inline std::size_t TcpPcb::core() const { return entry_->owner_core; }
inline FourTuple TcpPcb::tuple() const { return entry_->tuple; }
inline TcpState TcpPcb::state() const { return entry_->state; }
inline std::size_t TcpPcb::BytesInFlight() const {
  return entry_->snd_nxt - entry_->snd_una;
}

class TcpManager {
 public:
  using AcceptFn = std::function<void(TcpPcb)>;

  explicit TcpManager(NetworkManager& manager);
  ~TcpManager();

  // Passive open: accept handler runs on the core where each connection's SYN lands.
  void Listen(std::uint16_t port, AcceptFn accept);
  void Unlisten(std::uint16_t port);

  // Active open from the current core: picks an ephemeral source port whose flow hash steers
  // the connection back to this core, then completes the handshake.
  Future<TcpPcb> Connect(Interface& iface, Ipv4Addr dst, std::uint16_t dst_port);

  // Segment input from the IP layer (on the RSS core).
  void HandleSegment(Interface& iface, const Ipv4Header& ip, std::unique_ptr<IOBuf> segment);

  std::size_t active_connections() const { return table_.size(); }

  // Fault injection: severs every connection whose remote endpoint is `peer`, exactly as if
  // an RST arrived on each — a final RST goes out, the handler's Abort() fires, pending
  // connects fail, state is removed. Each connection is severed on its owner core (spawned
  // there when needed). Must be called from a core of this machine. Returns the number of
  // connections targeted.
  std::size_t SeverPeer(Ipv4Addr peer);

  // internal (used by TcpPcb/TcpEntry/TxBatcher logic)
  void TransmitSegment(TcpEntry& entry, std::uint8_t flags, std::unique_ptr<IOBuf> payload,
                       std::uint32_t seq, bool queue_rtx);
  void ArmRtxTimer(TcpEntry& entry);
  void RtxTimeout(std::shared_ptr<TcpEntry> entry);
  void RemoveEntry(TcpEntry& entry);
  NetworkManager& network() { return network_; }
  // Segments and transmits `len` payload bytes (the pre-cork Send body). Caller has already
  // verified the window.
  void SendPayload(TcpEntry& entry, std::unique_ptr<IOBuf> chain, std::size_t len);
  // Flushes as much of the entry's corked chain as the send window allows (dropping it
  // instead when the connection is torn down), then completes a pending Close() once the
  // chain drains. Safe to call with an empty queue or a removed entry.
  void FlushCorked(TcpEntry& entry);
  // Registers an auto-cork entry with its owner core's TxBatcher for the event-boundary
  // flush. Must be called on the owner core.
  void EnrollAutoCork(const std::shared_ptr<TcpEntry>& entry);
  TxBatcher& batcher(std::size_t core);

 private:
  struct Listener {
    AcceptFn accept;
  };

  std::shared_ptr<TcpEntry>* FindEntry(const FourTuple& tuple) { return table_.Find(tuple); }
  void HandleSyn(Interface& iface, const Ipv4Header& ip, const TcpHeader& tcp);
  void ProcessSegment(std::shared_ptr<TcpEntry> entry, const TcpHeader& tcp,
                      std::unique_ptr<IOBuf> payload);
  void DeliverInOrder(TcpEntry& entry, std::unique_ptr<IOBuf> payload, std::uint8_t flags);
  void SendAckIfPending(TcpEntry& entry);
  void EnterTimeWait(std::shared_ptr<TcpEntry> entry);
  std::uint16_t PickEphemeralPort(Interface& iface, Ipv4Addr dst, std::uint16_t dst_port,
                                  std::size_t desired_core);

  // Completes the FIN half of an application Close() (factored out so a deferred close can
  // run once the corked chain drains).
  void FinishClose(TcpEntry& entry);

  NetworkManager& network_;
  RcuHashTable<FourTuple, std::shared_ptr<TcpEntry>, FourTupleHash> table_;
  RcuHashTable<std::uint16_t, std::shared_ptr<Listener>> listeners_;
  std::atomic<std::uint16_t> next_ephemeral_{33000};
  // One TX batcher per core (index = machine core); only the owner core touches its batcher.
  std::vector<std::unique_ptr<TxBatcher>> batchers_;

  friend class TcpPcb;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_NET_TCP_H_
