// Wire-format types for the EbbRT network stack: addresses, packed protocol headers, Internet
// checksum, and the symmetric RSS hash used by the multiqueue NIC to steer flows to cores.
//
// Headers are packed structs read/written in place inside IOBuf views (Figure 2's
// `buf->Get<EthernetHeader>()` pattern); all multi-byte fields are big-endian on the wire.
#ifndef EBBRT_SRC_NET_NET_TYPES_H_
#define EBBRT_SRC_NET_NET_TYPES_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace ebbrt {

// --- Byte order (x86-64 is little-endian) ----------------------------------------------------
inline constexpr std::uint16_t HostToNet16(std::uint16_t v) { return __builtin_bswap16(v); }
inline constexpr std::uint16_t NetToHost16(std::uint16_t v) { return __builtin_bswap16(v); }
inline constexpr std::uint32_t HostToNet32(std::uint32_t v) { return __builtin_bswap32(v); }
inline constexpr std::uint32_t NetToHost32(std::uint32_t v) { return __builtin_bswap32(v); }

// --- Addresses -------------------------------------------------------------------------------

struct MacAddr {
  std::array<std::uint8_t, 6> bytes = {};

  static MacAddr Broadcast() { return {{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}; }
  static MacAddr FromIndex(std::uint64_t index) {
    // Locally-administered unicast prefix 02:xx:...
    MacAddr mac;
    mac.bytes = {0x02, 0x00,
                 static_cast<std::uint8_t>(index >> 24), static_cast<std::uint8_t>(index >> 16),
                 static_cast<std::uint8_t>(index >> 8), static_cast<std::uint8_t>(index)};
    return mac;
  }
  bool IsBroadcast() const { return *this == Broadcast(); }
  friend bool operator==(const MacAddr& a, const MacAddr& b) { return a.bytes == b.bytes; }
  std::string ToString() const {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1],
                  bytes[2], bytes[3], bytes[4], bytes[5]);
    return buf;
  }
} __attribute__((packed));

// IPv4 address held in host byte order; converted at the wire boundary.
struct Ipv4Addr {
  std::uint32_t raw = 0;  // host order

  static constexpr Ipv4Addr Any() { return {0}; }
  static constexpr Ipv4Addr BroadcastAll() { return {0xffffffff}; }
  static constexpr Ipv4Addr Of(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                               std::uint8_t d) {
    return {(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d};
  }
  constexpr bool IsAny() const { return raw == 0; }
  constexpr bool IsBroadcast() const { return raw == 0xffffffff; }
  friend constexpr bool operator==(Ipv4Addr a, Ipv4Addr b) { return a.raw == b.raw; }
  friend constexpr bool operator!=(Ipv4Addr a, Ipv4Addr b) { return a.raw != b.raw; }
  std::string ToString() const {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", raw >> 24, (raw >> 16) & 0xff,
                  (raw >> 8) & 0xff, raw & 0xff);
    return buf;
  }
};

// --- Ethernet --------------------------------------------------------------------------------

inline constexpr std::uint16_t kEthTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEthTypeArp = 0x0806;

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t type;  // network order
} __attribute__((packed));
static_assert(sizeof(EthernetHeader) == 14);

// --- ARP -------------------------------------------------------------------------------------

inline constexpr std::uint16_t kArpOpRequest = 1;
inline constexpr std::uint16_t kArpOpReply = 2;

struct ArpPacket {
  std::uint16_t htype;  // 1 = Ethernet
  std::uint16_t ptype;  // 0x0800 = IPv4
  std::uint8_t hlen;    // 6
  std::uint8_t plen;    // 4
  std::uint16_t oper;
  MacAddr sha;
  std::uint32_t spa;  // network order
  MacAddr tha;
  std::uint32_t tpa;  // network order
} __attribute__((packed));
static_assert(sizeof(ArpPacket) == 28);

// --- IPv4 ------------------------------------------------------------------------------------

inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

struct Ipv4Header {
  std::uint8_t version_ihl;     // 0x45: v4, 20-byte header
  std::uint8_t dscp_ecn;
  std::uint16_t total_length;   // network order
  std::uint16_t identification;
  std::uint16_t flags_fragment;
  std::uint8_t ttl;
  std::uint8_t protocol;
  std::uint16_t checksum;
  std::uint32_t src;  // network order
  std::uint32_t dst;  // network order

  Ipv4Addr SrcAddr() const { return {NetToHost32(src)}; }
  Ipv4Addr DstAddr() const { return {NetToHost32(dst)}; }
  std::size_t HeaderLength() const { return (version_ihl & 0x0f) * 4u; }
} __attribute__((packed));
static_assert(sizeof(Ipv4Header) == 20);

// RFC 1071 Internet checksum over `len` bytes.
inline std::uint16_t InternetChecksum(const void* data, std::size_t len,
                                      std::uint32_t seed = 0) {
  std::uint32_t sum = seed;
  auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 1) {
    std::uint16_t word;
    std::memcpy(&word, p, 2);
    sum += word;
    p += 2;
    len -= 2;
  }
  if (len == 1) {
    sum += *p;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

// --- UDP -------------------------------------------------------------------------------------

struct UdpHeader {
  std::uint16_t src_port;  // network order
  std::uint16_t dst_port;
  std::uint16_t length;
  std::uint16_t checksum;
} __attribute__((packed));
static_assert(sizeof(UdpHeader) == 8);

// --- TCP -------------------------------------------------------------------------------------

inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  std::uint16_t src_port;  // network order
  std::uint16_t dst_port;
  std::uint32_t seq;
  std::uint32_t ack;
  std::uint8_t data_offset;  // high nibble: header words
  std::uint8_t flags;
  std::uint16_t window;
  std::uint16_t checksum;
  std::uint16_t urgent;

  std::size_t HeaderLength() const { return (data_offset >> 4) * 4u; }
  void SetHeaderWords(std::uint8_t words) { data_offset = static_cast<std::uint8_t>(words << 4); }
} __attribute__((packed));
static_assert(sizeof(TcpHeader) == 20);

// Sequence-number arithmetic with wraparound (RFC 793 style).
inline constexpr bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline constexpr bool SeqLe(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

// --- Flow identification ---------------------------------------------------------------------

struct FourTuple {
  Ipv4Addr local_ip;
  std::uint16_t local_port = 0;
  Ipv4Addr remote_ip;
  std::uint16_t remote_port = 0;

  friend bool operator==(const FourTuple& a, const FourTuple& b) {
    return a.local_ip == b.local_ip && a.local_port == b.local_port &&
           a.remote_ip == b.remote_ip && a.remote_port == b.remote_port;
  }
};

struct FourTupleHash {
  std::size_t operator()(const FourTuple& t) const {
    std::uint64_t a = (std::uint64_t{t.local_ip.raw} << 16) | t.local_port;
    std::uint64_t b = (std::uint64_t{t.remote_ip.raw} << 16) | t.remote_port;
    std::uint64_t x = a * 0x9E3779B97F4A7C15ull ^ b * 0xC2B2AE3D27D4EB4Full;
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x);
  }
};

// Symmetric RSS hash: both directions of a flow map to the same queue, so a connection's
// receive processing always lands on the core chosen at establishment (§3.6: "Connection
// state is only manipulated on a single core which is chosen by the application").
inline std::uint32_t RssHash(Ipv4Addr a_ip, std::uint16_t a_port, Ipv4Addr b_ip,
                             std::uint16_t b_port) {
  std::uint64_t lo = (std::uint64_t{a_ip.raw} << 16) | a_port;
  std::uint64_t hi = (std::uint64_t{b_ip.raw} << 16) | b_port;
  if (lo > hi) {
    std::swap(lo, hi);
  }
  std::uint64_t x = lo * 0x9E3779B97F4A7C15ull + hi;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return static_cast<std::uint32_t>(x);
}

}  // namespace ebbrt

#endif  // EBBRT_SRC_NET_NET_TYPES_H_
