// DHCP client and server over the stack's UDP layer (§3.6 lists DHCP as part of the native
// stack; machines in the testbed can boot with no static configuration).
//
// The client runs the DISCOVER -> OFFER -> REQUEST -> ACK exchange and resolves a future with
// the acquired lease. The server is a small authoritative allocator used by tests and the
// hosted-frontend example (a real deployment would already have one on the isolated network).
#ifndef EBBRT_SRC_NET_DHCP_H_
#define EBBRT_SRC_NET_DHCP_H_

#include <cstdint>
#include <unordered_map>

#include "src/future/future.h"
#include "src/net/network_manager.h"

namespace ebbrt {

inline constexpr std::uint16_t kDhcpServerPort = 67;
inline constexpr std::uint16_t kDhcpClientPort = 68;

// BOOTP fixed header (RFC 2131) followed by the options magic + TLVs.
struct DhcpHeader {
  std::uint8_t op;        // 1 request, 2 reply
  std::uint8_t htype;     // 1 ethernet
  std::uint8_t hlen;      // 6
  std::uint8_t hops;
  std::uint32_t xid;      // network order
  std::uint16_t secs;
  std::uint16_t flags;
  std::uint32_t ciaddr;
  std::uint32_t yiaddr;   // "your" address (network order)
  std::uint32_t siaddr;
  std::uint32_t giaddr;
  std::uint8_t chaddr[16];
  std::uint8_t sname[64];
  std::uint8_t file[128];
  std::uint32_t magic;    // 0x63825363
} __attribute__((packed));
static_assert(sizeof(DhcpHeader) == 240);

enum DhcpMessageType : std::uint8_t {
  kDhcpDiscover = 1,
  kDhcpOffer = 2,
  kDhcpRequest = 3,
  kDhcpAck = 5,
};

namespace dhcp {
// Acquires a lease for `iface`'s machine: sends DISCOVER from 0.0.0.0, completes the exchange,
// applies the resulting IpConfig to the interface, and fulfills the future with it.
Future<Interface::IpConfig> Acquire(NetworkManager& network, Interface& iface);
}  // namespace dhcp

// Authoritative DHCP server handing out [pool_start, pool_start + pool_size) with fixed
// netmask/gateway. Bind on the serving machine's network manager.
class DhcpServer {
 public:
  DhcpServer(NetworkManager& network, Ipv4Addr pool_start, std::uint32_t pool_size,
             Ipv4Addr netmask, Ipv4Addr gateway);
  ~DhcpServer();

  std::size_t leases() const { return leases_.size(); }

 private:
  void HandleMessage(Ipv4Addr src, std::uint16_t sport, std::unique_ptr<IOBuf> msg);
  void Reply(const DhcpHeader& request, DhcpMessageType type, Ipv4Addr yiaddr);

  NetworkManager& network_;
  Ipv4Addr pool_start_;
  std::uint32_t pool_size_;
  Ipv4Addr netmask_;
  Ipv4Addr gateway_;
  Spinlock mu_;
  std::unordered_map<std::uint64_t, Ipv4Addr> leases_;  // chaddr hash -> address
  std::uint32_t next_offset_ = 0;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_NET_DHCP_H_
