// Assertion and fatal-error utilities for the EbbRT runtime.
//
// The native EbbRT kernel cannot unwind into a debugger on assertion failure; it prints and
// halts. We mirror that: kabort/kassert print a message and abort the process. kbugon mirrors
// the EbbRT macro of the same name (abort when the condition is TRUE).
#ifndef EBBRT_SRC_PLATFORM_DEBUG_H_
#define EBBRT_SRC_PLATFORM_DEBUG_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ebbrt {

// Prints a printf-style message to stderr and aborts. Never returns.
[[noreturn]] inline void Kabort(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

// Aborts when `cond` is true (matching EbbRT's kbugon semantics).
template <typename... Args>
inline void Kbugon(bool cond, const char* fmt, Args... args) {
  if (__builtin_expect(cond, false)) {
    Kabort(fmt, args...);
  }
}

// Runtime assertion: aborts when `cond` is false. Enabled in all build types — the runtime's
// invariants (single-writer per-core state, interrupt masking) are cheap to check and
// violations are otherwise silent corruption.
inline void Kassert(bool cond, const char* msg) {
  if (__builtin_expect(!cond, false)) {
    Kabort("kassert failure: %s", msg);
  }
}

}  // namespace ebbrt

#endif  // EBBRT_SRC_PLATFORM_DEBUG_H_
