// Cycle counter and wall-clock helpers.
//
// The paper reports dispatch and allocation costs in cycles on a 2.6 GHz Xeon E5-2690. We
// measure with rdtsc on x86-64 (serialized variants for benchmark boundaries) and fall back to
// steady_clock elsewhere. `kPaperCpuGhz` is the calibration constant used by the simulated
// testbed to convert measured cycles into virtual nanoseconds.
#ifndef EBBRT_SRC_PLATFORM_CLOCK_H_
#define EBBRT_SRC_PLATFORM_CLOCK_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace ebbrt {

// The paper's server clock rate; used to convert cycles <-> nanoseconds in the simulator.
inline constexpr double kPaperCpuGhz = 2.6;

// Raw cycle counter (not serialized; suitable for coarse measurement of handler runtime).
inline std::uint64_t ReadCycles() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Serialized cycle counter for benchmark start/stop boundaries.
inline std::uint64_t ReadCyclesSerialized() {
#if defined(__x86_64__)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return ReadCycles();
#endif
}

inline std::uint64_t CyclesToNs(std::uint64_t cycles) {
  return static_cast<std::uint64_t>(static_cast<double>(cycles) / kPaperCpuGhz);
}

inline std::uint64_t NsToCycles(std::uint64_t ns) {
  return static_cast<std::uint64_t>(static_cast<double>(ns) * kPaperCpuGhz);
}

// Monotonic wall clock in nanoseconds (real time, used by the thread executor).
inline std::uint64_t WallNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace ebbrt

#endif  // EBBRT_SRC_PLATFORM_CLOCK_H_
