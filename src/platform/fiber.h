// Event stacks and the raw context-switch primitive (see fiber.S).
//
// Stacks are mmap'd with a guard page below them so overflow faults instead of corrupting the
// neighbour. The event manager pools stacks per core: an event that never blocks costs one
// switch in and one out; a blocked event parks its stack until reactivated.
#ifndef EBBRT_SRC_PLATFORM_FIBER_H_
#define EBBRT_SRC_PLATFORM_FIBER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ebbrt {

extern "C" {
// Saves the current context's callee-saved state on its stack, stores the stack pointer to
// *save_sp, and resumes the context whose stack pointer is restore_sp.
void ebbrt_context_switch(void** save_sp, void* restore_sp);
// Assembly trampoline that first-activates a fiber (declared for address-of only).
void ebbrt_fiber_entry();
}

class FiberStack {
 public:
  static constexpr std::size_t kDefaultSize = 256 * 1024;

  explicit FiberStack(std::size_t size = kDefaultSize);
  ~FiberStack();

  FiberStack(const FiberStack&) = delete;
  FiberStack& operator=(const FiberStack&) = delete;

  // Builds the initial fake switch frame: the first ebbrt_context_switch into the returned
  // stack pointer calls entry(arg) on this stack via ebbrt_fiber_entry.
  void* InitialSp(void (*entry)(void*), void* arg);

  void* limit() const { return limit_; }  // lowest usable address
  void* top() const { return top_; }      // highest (aligned) address

 private:
  void* mapping_;
  std::size_t mapping_size_;
  void* limit_;
  void* top_;
};

// Per-core stack pool. Not thread-safe: each core owns one (non-preemptive single writer).
class StackPool {
 public:
  std::unique_ptr<FiberStack> Get();
  void Put(std::unique_ptr<FiberStack> stack);
  std::size_t size() const { return pool_.size(); }

 private:
  static constexpr std::size_t kMaxPooled = 16;
  std::vector<std::unique_ptr<FiberStack>> pool_;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_PLATFORM_FIBER_H_
