// MoveFunction — a move-only callable wrapper with small-buffer optimization.
//
// EbbRT passes ownership of IOBufs and Promises into continuations; std::function requires
// copyable callables, which forces shared_ptr workarounds and heap churn. MoveFunction stores
// any move-constructible callable, inline when it fits in the small buffer (no allocation on
// the event hot path), on the heap otherwise. This mirrors ebbrt::MovableFunction from the
// original runtime (std::move_only_function is C++23 and unavailable on this toolchain).
#ifndef EBBRT_SRC_PLATFORM_MOVE_FUNCTION_H_
#define EBBRT_SRC_PLATFORM_MOVE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "src/platform/debug.h"

namespace ebbrt {

template <typename Signature>
class MoveFunction;

template <typename R, typename... Args>
class MoveFunction<R(Args...)> {
 public:
  MoveFunction() noexcept = default;
  MoveFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  MoveFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Holder<Decayed>) <= kBufferSize &&
                  alignof(Holder<Decayed>) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      vtable_ = Holder<Decayed>::InlineVtable();
      new (&buffer_) Holder<Decayed>(std::forward<F>(f));
    } else {
      vtable_ = Holder<Decayed>::HeapVtable();
      heap_ = new Holder<Decayed>(std::forward<F>(f));
    }
  }

  MoveFunction(MoveFunction&& other) noexcept { MoveFrom(std::move(other)); }

  MoveFunction& operator=(MoveFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  MoveFunction(const MoveFunction&) = delete;
  MoveFunction& operator=(const MoveFunction&) = delete;

  ~MoveFunction() { Reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) {
    Kassert(vtable_ != nullptr, "MoveFunction: invoking empty function");
    return vtable_->invoke(Storage(), std::forward<Args>(args)...);
  }

 private:
  static constexpr std::size_t kBufferSize = 6 * sizeof(void*);

  struct Vtable {
    R (*invoke)(void* storage, Args&&... args);
    void (*move_to)(void* from, void* to) noexcept;  // inline only; moves holder into `to`
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename F>
  struct Holder {
    explicit Holder(const F& f) : fn(f) {}
    explicit Holder(F&& f) : fn(std::move(f)) {}
    F fn;

    static const Vtable* InlineVtable() {
      static const Vtable vt = {
          [](void* storage, Args&&... args) -> R {
            return static_cast<Holder*>(storage)->fn(std::forward<Args>(args)...);
          },
          [](void* from, void* to) noexcept {
            new (to) Holder(std::move(*static_cast<Holder*>(from)));
            static_cast<Holder*>(from)->~Holder();
          },
          [](void* storage) noexcept { static_cast<Holder*>(storage)->~Holder(); },
          true};
      return &vt;
    }

    static const Vtable* HeapVtable() {
      static const Vtable vt = {
          [](void* storage, Args&&... args) -> R {
            return static_cast<Holder*>(storage)->fn(std::forward<Args>(args)...);
          },
          nullptr,
          [](void* storage) noexcept { delete static_cast<Holder*>(storage); },
          false};
      return &vt;
    }
  };

  void* Storage() noexcept {
    return vtable_ && vtable_->inline_storage ? static_cast<void*>(&buffer_) : heap_;
  }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(Storage());
      vtable_ = nullptr;
      heap_ = nullptr;
    }
  }

  void MoveFrom(MoveFunction&& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->inline_storage) {
        vtable_->move_to(&other.buffer_, &buffer_);
      } else {
        heap_ = other.heap_;
      }
      other.vtable_ = nullptr;
      other.heap_ = nullptr;
    }
  }

  const Vtable* vtable_ = nullptr;
  union {
    alignas(std::max_align_t) unsigned char buffer_[kBufferSize];
    void* heap_;
  };
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_PLATFORM_MOVE_FUNCTION_H_
