// Per-core execution context.
//
// EbbRT's native environment numbers cores and gives each one a translation region for Ebb
// representatives plus non-preemptive event execution. We model a *core* as a global slot
// (0..kMaxCores). Executors (thread-per-core or discrete-event) install the current core's
// context into TLS before running a handler; all per-core fast paths (Ebb translation, RCU,
// slab caches) read it without atomics, which is safe because a core's state is only ever
// touched by the one thread currently acting as that core.
#ifndef EBBRT_SRC_PLATFORM_CONTEXT_H_
#define EBBRT_SRC_PLATFORM_CONTEXT_H_

#include <cstddef>
#include <cstdint>

#include "src/platform/debug.h"

namespace ebbrt {

class Runtime;

inline constexpr std::size_t kMaxCores = 64;

// Fast-path Ebb translation covers ids below this bound (the "per-core virtual memory
// region" of the paper, modeled as a flat per-core array).
inline constexpr std::size_t kMaxFastEbbIds = 1 << 14;

struct Context {
  Runtime* runtime = nullptr;    // machine this core belongs to
  std::size_t core = SIZE_MAX;   // global core slot
  std::size_t machine_core = 0;  // index of this core within its machine
  bool in_event = false;         // true while an event handler runs (interrupts masked)
};

namespace context_internal {
// TLS fast-path pointer to the current core's Ebb translation table. For hosted runtimes this
// points at a shared always-null table so every dereference takes the miss path (which does a
// hash-table lookup, as the paper's Linux userspace implementation must).
extern thread_local void** local_ebb_table;
extern thread_local Context current;
extern void* const all_null_table[kMaxFastEbbIds];

// Per-core translation table storage, allocated on first install.
void** CoreEbbTable(std::size_t core);
}  // namespace context_internal

inline Context& CurrentContext() { return context_internal::current; }

inline std::size_t CurrentCore() {
  Kassert(context_internal::current.runtime != nullptr, "CurrentCore: no context installed");
  return context_internal::current.core;
}

inline Runtime& CurrentRuntime() {
  Kassert(context_internal::current.runtime != nullptr,
          "CurrentRuntime: no context installed");
  return *context_internal::current.runtime;
}

inline bool HaveContext() { return context_internal::current.runtime != nullptr; }

// Installs `ctx` as this thread's current core context. `hosted` selects the always-null
// translation table (hash-lookup slow path on every Ebb call).
void InstallContext(const Context& ctx, bool hosted);

// RAII installer used by executors and tests; restores the previous context on destruction.
class ScopedContext {
 public:
  ScopedContext(Runtime& runtime, std::size_t core, std::size_t machine_core, bool hosted);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context saved_;
  void** saved_table_;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_PLATFORM_CONTEXT_H_
