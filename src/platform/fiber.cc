#include "src/platform/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "src/platform/debug.h"

namespace ebbrt {

FiberStack::FiberStack(std::size_t size) {
  long page = sysconf(_SC_PAGESIZE);
  std::size_t page_size = page > 0 ? static_cast<std::size_t>(page) : 4096;
  // Round the usable area up to whole pages and add one guard page below.
  std::size_t usable = (size + page_size - 1) & ~(page_size - 1);
  mapping_size_ = usable + page_size;
  mapping_ = mmap(nullptr, mapping_size_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  Kbugon(mapping_ == MAP_FAILED, "FiberStack: mmap of %zu bytes failed", mapping_size_);
  Kbugon(mprotect(mapping_, page_size, PROT_NONE) != 0, "FiberStack: guard mprotect failed");
  limit_ = static_cast<std::uint8_t*>(mapping_) + page_size;
  // Top aligned down to 16 so the fiber-entry trampoline sees an ABI-aligned stack.
  auto top = reinterpret_cast<std::uintptr_t>(mapping_) + mapping_size_;
  top_ = reinterpret_cast<void*>(top & ~std::uintptr_t{15});
}

FiberStack::~FiberStack() { munmap(mapping_, mapping_size_); }

void* FiberStack::InitialSp(void (*entry)(void*), void* arg) {
  // Frame layout consumed by ebbrt_context_switch's restore path (low to high):
  //   [r15][r14][r13][r12=arg][rbx=entry][rbp][return address = ebbrt_fiber_entry]
  auto* slots = static_cast<void**>(top_);
  slots -= 7;
  slots[0] = nullptr;                                 // r15
  slots[1] = nullptr;                                 // r14
  slots[2] = nullptr;                                 // r13
  slots[3] = arg;                                     // r12 -> rdi in trampoline
  slots[4] = reinterpret_cast<void*>(entry);          // rbx -> call target
  slots[5] = nullptr;                                 // rbp
  slots[6] = reinterpret_cast<void*>(&ebbrt_fiber_entry);  // ret lands in trampoline
  return slots;
}

std::unique_ptr<FiberStack> StackPool::Get() {
  if (!pool_.empty()) {
    auto stack = std::move(pool_.back());
    pool_.pop_back();
    return stack;
  }
  return std::make_unique<FiberStack>();
}

void StackPool::Put(std::unique_ptr<FiberStack> stack) {
  if (pool_.size() < kMaxPooled) {
    pool_.push_back(std::move(stack));
  }
}

}  // namespace ebbrt
