// Minimal test-and-set spinlock with exponential pause backoff.
//
// Used only off the per-core fast paths (cross-core slab returns, control-plane registries,
// future state shared across cores). Per-core data needs no lock at all — EbbRT's
// non-preemptive, non-migrating events make plain loads/stores safe there.
#ifndef EBBRT_SRC_PLATFORM_SPINLOCK_H_
#define EBBRT_SRC_PLATFORM_SPINLOCK_H_

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace ebbrt {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {  // NOLINT: BasicLockable naming
    while (flag_.exchange(true, std::memory_order_acquire)) {
      do {
        CpuRelax();
      } while (flag_.load(std::memory_order_relaxed));
    }
  }

  bool try_lock() {  // NOLINT: Lockable naming
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() {  // NOLINT: BasicLockable naming
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

// Cache-line size used to pad per-core structures against false sharing.
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace ebbrt

#endif  // EBBRT_SRC_PLATFORM_SPINLOCK_H_
