#include "src/platform/context.h"

#include <array>
#include <cstring>
#include <mutex>

namespace ebbrt {
namespace context_internal {

thread_local void** local_ebb_table = nullptr;
thread_local Context current;
void* const all_null_table[kMaxFastEbbIds] = {};

namespace {
// Lazily-allocated per-core tables. Allocation is control-plane (machine bring-up) so a mutex
// is fine; the data-plane only reads the returned pointer.
std::array<void**, kMaxCores> tables = {};
std::mutex tables_mu;
}  // namespace

void** CoreEbbTable(std::size_t core) {
  Kassert(core < kMaxCores, "CoreEbbTable: core out of range");
  std::lock_guard<std::mutex> lock(tables_mu);
  if (tables[core] == nullptr) {
    tables[core] = new void*[kMaxFastEbbIds]();
  }
  return tables[core];
}

}  // namespace context_internal

void InstallContext(const Context& ctx, bool hosted) {
  context_internal::current = ctx;
  if (ctx.runtime == nullptr) {
    context_internal::local_ebb_table = nullptr;
    return;
  }
  if (hosted) {
    context_internal::local_ebb_table =
        const_cast<void**>(context_internal::all_null_table);
  } else {
    context_internal::local_ebb_table = context_internal::CoreEbbTable(ctx.core);
  }
}

ScopedContext::ScopedContext(Runtime& runtime, std::size_t core, std::size_t machine_core,
                             bool hosted) {
  saved_ = context_internal::current;
  saved_table_ = context_internal::local_ebb_table;
  Context ctx;
  ctx.runtime = &runtime;
  ctx.core = core;
  ctx.machine_core = machine_core;
  InstallContext(ctx, hosted);
}

ScopedContext::~ScopedContext() {
  context_internal::current = saved_;
  context_internal::local_ebb_table = saved_table_;
}

}  // namespace ebbrt
